package telemetry

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"wlanscale/internal/obs"
	"wlanscale/internal/obs/trace"
	"wlanscale/internal/rng"
)

// Agent is the AP-side reporting agent: it queues reports locally and
// serves them to the backend when polled. If the tunnel drops, client
// traffic continues and reports accumulate until the backend reconnects
// and drains the queue — the failure mode Section 2 describes.
type Agent struct {
	Serial string
	Key    []byte
	// QueueLimit bounds the offline queue; oldest reports are dropped
	// beyond it, as a real device's flash budget forces.
	QueueLimit int
	// Timeout bounds every tunnel frame op (see Tunnel.SetTimeout). The
	// backend must poll more often than this or the agent treats the
	// session as dead and reconnects. Zero disables deadlines.
	Timeout time.Duration
	// BackoffBase and BackoffMax tune the reconnect backoff; zero
	// values default to 50ms and 5s.
	BackoffBase, BackoffMax time.Duration
	// Health, when set, receives the agent's reconnect and error
	// counters. Safe to share one instance across a fleet.
	Health *HarvestHealth
	// Metrics, when attached (NewAgentMetrics), counts dials, retries,
	// backoff waits, and queue pressure. The zero value is a no-op.
	Metrics AgentMetrics
	// Wire is the maximum wire version the agent announces (WireV2 opts
	// into delta-coded batch frames); zero or WireV1 keeps the legacy
	// per-report protocol byte-identical. A v2 hello rejected by a
	// legacy backend triggers a sticky per-process fallback to v1 on the
	// next session.
	Wire byte
	// BatchBytes is the v2 batch payload budget: the adaptive batcher
	// flushes a batch rather than grow past it. Zero defaults to 64 KiB.
	BatchBytes int
	// BatchMaxAge is the queue-age override: when the oldest queued
	// report has waited longer than this, the size budget is waived so a
	// backlog drains at full poll width instead of trickling out in
	// budget-sized batches. Zero defaults to 30s.
	BatchMaxAge time.Duration
	// Dial, when set, replaces net.Dial for the reconnect loops —
	// merakisim's -chaos-corrupt and the monitoring smoke gate use it
	// to route sessions through a faultnet wrapper. Nil dials plain
	// TCP.
	Dial func(addr string) (net.Conn, error)

	mu      sync.Mutex
	queue   [][]byte
	enqUS   []int64   // wall-clock enqueue micros, parallel to queue
	reps    []*Report // decoded-report cache, parallel to queue; nil entries decode lazily
	dropped int
	seq     uint64
	// wireFallback latches when a v2 session died before its first poll
	// — the legacy-backend signature — and pins later sessions to v1.
	wireFallback bool

	// Tracing state (EnableTrace). meta parallels queue whenever tracing
	// is on, carrying each queued report's trace ID, enqueue time, and
	// delivery-attempt count so tunnel.write spans can report queue-dwell
	// time and retries.
	tracer   *trace.Tracer
	traceIDs *trace.IDStream
	meta     []queueMeta
}

// queueMeta is the per-queued-report trace bookkeeping.
type queueMeta struct {
	id       trace.ID
	seq      uint64
	enq      trace.Event // the report's agent.enqueue span, re-shipped with each batch
	enqUS    int64       // wall-clock microseconds when the report was queued
	attempts int         // times this report has been put on the wire
}

// NewAgent creates an agent for a device. The default 30s frame timeout
// assumes the backend's poll cadence is well under 30s (merakid
// defaults to 2s); slower deployments should raise Timeout.
func NewAgent(serial string, key []byte) *Agent {
	return &Agent{Serial: serial, Key: key, QueueLimit: 4096, Timeout: 30 * time.Second}
}

// EnableTrace attaches a tracer: every subsequent report gets a
// deterministic trace ID drawn from the agent's private ID stream
// (keyed by serial), sampled reports record agent.enqueue/tunnel.write
// spans, and those spans ride each report batch to the backend.
// Reports queued before EnableTrace stay untraced.
func (a *Agent) EnableTrace(t *trace.Tracer) {
	if t == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tracer = t
	a.traceIDs = t.IDs("agent/" + a.Serial)
	a.meta = make([]queueMeta, len(a.queue))
}

// Enqueue queues one report for upload, stamping its sequence number.
// The agent retains r until it is acked or dropped (the v2 batcher
// encodes from it directly, skipping a marshal round-trip), so the
// caller must not modify the report after Enqueue returns.
func (a *Agent) Enqueue(r *Report) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seq++
	r.SeqNo = a.seq
	var sp trace.Span
	var m queueMeta
	if a.traceIDs != nil {
		id, sampled := a.traceIDs.Next()
		r.TraceID = uint64(id)
		m.id = id
		m.seq = a.seq
		if sampled {
			sp = a.tracer.Start(id, trace.StageAgentEnqueue)
			sp.SetSerial(a.Serial)
			sp.SetSeq(a.seq)
		}
	}
	a.queue = append(a.queue, r.Marshal())
	a.enqUS = append(a.enqUS, time.Now().UnixMicro())
	a.reps = append(a.reps, r)
	if a.traceIDs != nil {
		m.enq = sp.EndEvent()
		m.enqUS = m.enq.StartUS + m.enq.DurUS
		a.meta = append(a.meta, m)
	}
	a.Metrics.Enqueued.Inc()
	if a.QueueLimit > 0 && len(a.queue) > a.QueueLimit {
		over := len(a.queue) - a.QueueLimit
		a.queue = a.queue[over:]
		a.enqUS = a.enqUS[over:]
		a.reps = a.reps[over:]
		a.dropped += over
		a.Metrics.Dropped.Add(int64(over))
		if a.meta != nil {
			a.meta = a.meta[over:]
		}
	}
}

// QueueLen returns the number of queued reports.
func (a *Agent) QueueLen() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// Dropped returns the number of reports lost to queue overflow.
func (a *Agent) Dropped() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dropped
}

func (a *Agent) peek(max int) [][]byte {
	out, _ := a.peekBatch(max, "")
	return out
}

// peekBatch copies up to max queued reports and, when tracing, builds
// their tunnel.write span events: one per sampled report, measuring
// queue dwell (enqueue to wire) with the delivery-attempt count and the
// connection's fault profile attached. Each call counts as one delivery
// attempt, so a batch re-sent after a dropped session ships the same
// spans with Retries incremented (the recorder keeps the latest).
func (a *Agent) peekBatch(max int, fault string) ([][]byte, []trace.Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if max > len(a.queue) {
		max = len(a.queue)
	}
	out := make([][]byte, max)
	copy(out, a.queue[:max])
	return out, a.spanEventsLocked(max, fault)
}

// spanEventsLocked builds the tunnel.write span events for the first n
// queued reports (those about to ship), counting one delivery attempt
// each. Caller holds a.mu.
func (a *Agent) spanEventsLocked(n int, fault string) []trace.Event {
	if a.traceIDs == nil {
		return nil
	}
	var spans []trace.Event
	var nowUS int64
	for i := 0; i < n; i++ {
		m := &a.meta[i]
		if a.tracer.Sampled(m.id) {
			if nowUS == 0 {
				nowUS = time.Now().UnixMicro()
			}
			if m.enq.Trace != 0 {
				// Re-ship the enqueue span too: the daemon only learns
				// about agent-side spans from batches that land.
				spans = append(spans, m.enq)
			}
			ev := trace.Event{
				Trace:   m.id,
				Span:    trace.StageTunnelWrite.SpanID(),
				Parent:  trace.StageTunnelWrite.Parent(),
				Stage:   trace.StageTunnelWrite.String(),
				Serial:  a.Serial,
				Seq:     m.seq,
				StartUS: m.enqUS,
				DurUS:   nowUS - m.enqUS,
				Retries: m.attempts,
				Fault:   fault,
			}
			spans = append(spans, ev)
			// Mirror into the agent-side recorder so an agent process
			// has its own view even if the batch never lands.
			a.tracer.RecordEvent(ev)
		}
		m.attempts++
	}
	return spans
}

func (a *Agent) drop(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n > len(a.queue) {
		n = len(a.queue)
	}
	a.queue = a.queue[n:]
	a.enqUS = a.enqUS[n:]
	a.reps = a.reps[n:]
	if a.meta != nil {
		a.meta = a.meta[n:]
	}
}

// queueSnapshot is the gob-persisted agent state — what a real device
// keeps on flash so a reboot resumes where it left off.
type queueSnapshot struct {
	Serial  string
	Seq     uint64
	Dropped int
	Queue   [][]byte
}

// queueMagic opens every queue snapshot; the trailing byte is the
// format version. The fixed header that follows it — queued-report
// count, then a CRC32-C of the gob payload — lets LoadQueue tell a
// clean snapshot from flash corruption, and still account the lost
// reports when the payload is unreadable.
var queueMagic = [8]byte{'W', 'L', 'Q', 'S', 'N', 'P', 'v', '1'}

const queueHeaderSize = 16 // magic(8) + count(4) + crc(4)

var queueCRCTable = crc32.MakeTable(crc32.Castagnoli)

// SaveQueue persists the unacknowledged queue, the sequence counter,
// and the overflow-drop counter, framed by a versioned header and a
// payload checksum. Acknowledged reports are already gone from the
// queue, so a restore never re-delivers more than the backend's
// (serial, seqno) dedup absorbs.
func (a *Agent) SaveQueue(w io.Writer) error {
	a.mu.Lock()
	snap := queueSnapshot{Serial: a.Serial, Seq: a.seq, Dropped: a.dropped}
	snap.Queue = make([][]byte, len(a.queue))
	copy(snap.Queue, a.queue)
	a.mu.Unlock()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snap); err != nil {
		return err
	}
	hdr := make([]byte, queueHeaderSize)
	copy(hdr, queueMagic[:])
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(snap.Queue)))
	binary.BigEndian.PutUint32(hdr[12:], crc32.Checksum(payload.Bytes(), queueCRCTable))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// LoadQueue restores a saved queue after a reboot, replacing the
// current queue. A corrupt or truncated snapshot — bad magic, short
// file, checksum mismatch, undecodable gob — does not error the agent
// out of its durable-queue semantics: the agent starts with an empty
// queue and the header's report count (when readable) is added to
// Dropped, so the loss is accounted like any other queue drop. Only a
// snapshot that decodes cleanly but belongs to another device is
// rejected with an error. The sequence counter only moves forward:
// restoring a stale snapshot must not re-issue sequence numbers that
// newer reports may already have used, or the backend would dedup
// fresh data away.
func (a *Agent) LoadQueue(r io.Reader) error {
	hdr := make([]byte, queueHeaderSize)
	lostCount := 0
	corrupt := func() error {
		a.mu.Lock()
		a.queue = nil
		a.enqUS = nil
		a.reps = nil
		a.dropped += lostCount
		if a.meta != nil {
			a.meta = nil
		}
		a.mu.Unlock()
		a.Metrics.Dropped.Add(int64(lostCount))
		return nil
	}
	if _, err := io.ReadFull(r, hdr); err != nil {
		return corrupt()
	}
	if [8]byte(hdr[:8]) != queueMagic {
		return corrupt()
	}
	lostCount = int(binary.BigEndian.Uint32(hdr[8:]))
	wantCRC := binary.BigEndian.Uint32(hdr[12:])
	payload, err := io.ReadAll(r)
	if err != nil {
		return corrupt()
	}
	if crc32.Checksum(payload, queueCRCTable) != wantCRC {
		return corrupt()
	}
	var snap queueSnapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return corrupt()
	}
	if snap.Serial != "" && snap.Serial != a.Serial {
		return fmt.Errorf("telemetry: queue snapshot is for %q, agent is %q", snap.Serial, a.Serial)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.queue = snap.Queue
	// Zero enqueue times read as ancient, so a restored backlog trips
	// the batch-age override and drains at full poll width. Restored
	// entries have no decoded-report cache; buildBatch decodes lazily.
	a.enqUS = make([]int64, len(a.queue))
	a.reps = make([]*Report, len(a.queue))
	a.dropped = snap.Dropped
	if a.traceIDs != nil {
		// Restored reports keep the trace IDs baked into their bytes, but
		// the agent-side span bookkeeping did not survive the reboot;
		// zero meta means no tunnel.write spans for them.
		a.meta = make([]queueMeta, len(a.queue))
	}
	if snap.Seq > a.seq {
		a.seq = snap.Seq
	}
	return nil
}

// Serve connects to the backend at addr and answers polls until the
// connection fails or closed is signalled. It returns the error that
// ended the session (nil on clean shutdown by the peer).
func (a *Agent) Serve(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return a.ServeConn(conn)
}

// wireVersion returns the wire version the next session should
// announce: the configured maximum, demoted to v1 once the fallback
// latch has tripped.
func (a *Agent) wireVersion() byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.Wire >= WireV2 && !a.wireFallback {
		return WireV2
	}
	return WireV1
}

// noteFallback latches the sticky v1 fallback after a v2 hello was
// rejected: the session died before the backend ever polled, which is
// what a legacy backend's handshake rejection looks like from here.
func (a *Agent) noteFallback() {
	a.mu.Lock()
	latched := !a.wireFallback
	a.wireFallback = true
	a.mu.Unlock()
	if latched {
		a.Metrics.WireFallbacks.Inc()
	}
}

// ServeConn runs the agent protocol over an established connection.
// Every frame op is bounded by a.Timeout, so a stalled backend costs at
// most one timeout, never a hung goroutine.
//
// A WireV2 agent opens with frameHelloV2 and answers each poll in the
// format the poll requests: framePoll gets a legacy frameReports (the
// backend negotiated v1), framePollV2 gets a delta-coded frameBatch. If
// a v2 session dies before the first poll, the agent assumes a legacy
// backend rejected the hello and falls back to v1 for subsequent
// sessions (sticky for the process lifetime).
func (a *Agent) ServeConn(conn net.Conn) error {
	t, err := NewTunnel(conn, a.Key)
	if err != nil {
		conn.Close()
		return err
	}
	defer t.Close()
	t.SetTimeout(a.Timeout)
	fault := connFaultProfile(conn)
	wire := a.wireVersion()
	hello := &Message{Type: frameHello, Serial: a.Serial}
	if wire >= WireV2 {
		hello = &Message{Type: frameHelloV2, Wire: wire, Serial: a.Serial}
	}
	polled := false
	sessionErr := func(err error) error {
		if wire >= WireV2 && !polled {
			a.noteFallback()
		}
		return err
	}
	if err := t.WriteFrame(EncodeMessage(hello)); err != nil {
		return sessionErr(err)
	}
	for {
		raw, err := t.ReadFrame()
		if err != nil {
			return sessionErr(err)
		}
		m, err := DecodeMessage(raw)
		if err != nil {
			return sessionErr(err)
		}
		switch m.Type {
		case framePoll:
			polled = true
			batch, spans := a.peekBatch(int(m.Max), fault)
			if err := t.WriteFrame(EncodeMessage(&Message{
				Type: frameReports, Reports: batch, Dropped: uint32(a.Dropped()), Spans: spans,
			})); err != nil {
				return err
			}
		case framePollV2:
			polled = true
			payload, err := a.buildBatch(int(m.Max), fault)
			if err != nil {
				return err
			}
			if err := t.WriteFrame(append([]byte{frameBatch}, payload...)); err != nil {
				return err
			}
			a.Metrics.BatchesSent.Inc()
		case frameAck:
			a.drop(int(m.Count))
		default:
			return sessionErr(ErrBadFrameType)
		}
	}
}

// buildBatch assembles one v2 batch payload from the head of the queue:
// up to max reports, delta-coded under the BatchBytes budget unless the
// oldest report's age trips the BatchMaxAge override. The remaining
// queue depth rides the frame as the backpressure hint.
func (a *Agent) buildBatch(max int, fault string) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if max > len(a.queue) {
		max = len(a.queue)
	}
	budget := a.BatchBytes
	if budget == 0 {
		budget = 64 << 10
	}
	maxAge := a.BatchMaxAge
	if maxAge == 0 {
		maxAge = 30 * time.Second
	}
	aged := false
	if max > 0 && time.Now().UnixMicro()-a.enqUS[0] > maxAge.Microseconds() {
		aged = true
		budget = 0 // age override: drain at full poll width
	}
	be := NewBatchEncoder(budget)
	sized := false
	for i := 0; i < max; i++ {
		r := a.reps[i]
		if r == nil {
			var err error
			if r, err = UnmarshalReport(a.queue[i]); err != nil {
				// A queue entry that no longer decodes cannot ever ship;
				// if it heads the queue it would wedge the agent, so drop
				// and account it. Mid-batch, just stop — the next poll
				// retries.
				if i == 0 {
					a.queue = a.queue[1:]
					a.enqUS = a.enqUS[1:]
					a.reps = a.reps[1:]
					if a.meta != nil {
						a.meta = a.meta[1:]
					}
					a.dropped++
					a.Metrics.Dropped.Inc()
				}
				break
			}
			a.reps[i] = r
		}
		if !be.Add(r) {
			sized = true
			break
		}
	}
	if sized {
		a.Metrics.BatchSizeFlushes.Inc()
	}
	if aged && be.Len() > 0 {
		a.Metrics.BatchAgeFlushes.Inc()
	}
	spans := a.spanEventsLocked(be.Len(), fault)
	depth := len(a.queue) - be.Len()
	return be.Finish(uint32(a.dropped), uint32(depth), spans), nil
}

// RunWithReconnect keeps the agent connected to addr, retrying with
// jittered, capped exponential backoff, until stop is closed — closing
// stop also tears down an in-flight session.
func (a *Agent) RunWithReconnect(addr string, stop <-chan struct{}) {
	a.runReconnect([]string{addr}, stop)
}

// RunMultiHome keeps the agent connected to one of two datacenters,
// alternating on every failure — the paper's dual-DC deployment, where
// a device falls back to its secondary when the primary is unreachable
// and returns on the next failure. Backoff and jitter behave as in
// RunWithReconnect.
func (a *Agent) RunMultiHome(primary, secondary string, stop <-chan struct{}) {
	a.runReconnect([]string{primary, secondary}, stop)
}

// RunAddrs generalizes RunMultiHome to any failover chain: the agent
// connects to addrs[0], moves to the next address on every session
// failure, and wraps around — the cluster deployment shape, where an
// agent's chain is its network's shard (by the cluster shard map)
// followed by whatever fallbacks the operator configured. Backoff and
// jitter behave as in RunWithReconnect. An empty addrs returns
// immediately.
func (a *Agent) RunAddrs(addrs []string, stop <-chan struct{}) {
	if len(addrs) == 0 {
		return
	}
	a.runReconnect(addrs, stop)
}

// reconnectJitter derives the agent's private jitter stream from its
// serial, so a fleet restarted at once does not reconnect in lockstep
// (no thundering herd after a backend restart) yet every run of one
// agent is deterministic.
func reconnectJitter(serial string) *rng.Source {
	h := fnv.New64a()
	h.Write([]byte(serial))
	return rng.New(h.Sum64()).Split("reconnect-jitter")
}

func (a *Agent) runReconnect(addrs []string, stop <-chan struct{}) {
	base := a.BackoffBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := a.BackoffMax
	if max <= 0 {
		max = 5 * time.Second
	}
	jitter := reconnectJitter(a.Serial)
	backoff := base
	sessions := 0
	for attempt := 0; ; attempt++ {
		select {
		case <-stop:
			return
		default:
		}
		a.Metrics.Dials.Inc()
		dial := a.Dial
		if dial == nil {
			dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
		}
		conn, err := dial(addrs[attempt%len(addrs)])
		if err == nil {
			sessions++
			if sessions > 1 && a.Health != nil {
				a.Health.AddReconnect()
			}
			done := make(chan struct{})
			if stop != nil {
				go func() {
					select {
					case <-stop:
						conn.Close()
					case <-done:
					}
				}()
			}
			err = a.ServeConn(conn)
			close(done)
		}
		if err == nil {
			return
		}
		if a.Health != nil {
			a.Health.Observe(err)
		}
		a.Metrics.Retries.Inc()
		// Sleep backoff scaled by a jitter factor in [0.5, 1.5).
		wait := time.Duration(float64(backoff) * (0.5 + jitter.Float64()))
		a.Metrics.BackoffWaits.Inc()
		a.Metrics.BackoffUS.Add(wait.Microseconds())
		select {
		case <-stop:
			return
		case <-time.After(wait):
		}
		if backoff < max {
			backoff *= 2
			if backoff > max {
				backoff = max
			}
		}
	}
}

// Poller is the backend side of the harvest protocol: it owns one
// device connection and pulls queued reports.
type Poller struct {
	tunnel *Tunnel
	// Serial is the device's announced serial.
	Serial string
	// agentWire is the maximum wire version the device announced in its
	// hello; wire is the session's negotiated version (NegotiateWire),
	// defaulting to v1.
	agentWire, wire byte
	// queueDepth is the device's remaining queue depth from the last v2
	// batch — the backpressure hint merakid's drain mode reads.
	queueDepth atomic.Uint32
	// Health, when set, receives the poller's error counters and the
	// device's piggybacked queue-drop totals.
	Health *HarvestHealth
	// Metrics, when attached (NewHarvestMetrics), counts polls, frames,
	// and reports. The zero value is a no-op.
	Metrics HarvestMetrics
	// Trace, when set, records a daemon.read span for every sampled
	// report a poll delivers and folds the agent-side spans riding the
	// batch into the daemon's flight recorder.
	Trace *trace.Tracer
	// BeforeAck, when set, runs after a poll's reports are decoded and
	// before the ack frame is sent, with the decoded reports and their
	// raw wire bytes. An error aborts the poll without acking, so the
	// device keeps the batch queued and re-delivers it — the hook is
	// where a durable backend appends to its write-ahead log (and
	// ingests), making "acked" imply "recoverable" across process
	// death.
	BeforeAck func(reports []*Report, raw [][]byte) error
	// BeforeAckFrame, when set, replaces BeforeAck on v2 polls: it runs
	// with the decoded batch and the raw batch payload so a durable
	// backend can append the whole frame to its write-ahead log as one
	// record instead of re-marshaling per report. When nil, v2 polls
	// fall back to BeforeAck with nil raw.
	BeforeAckFrame func(reports []*Report, payload []byte) error
}

// connFaultProfile surfaces a faultnet connection's scheduled faults
// for span annotation; non-fault connections report "".
func connFaultProfile(conn net.Conn) string {
	if fp, ok := conn.(interface{ FaultProfile() string }); ok {
		return fp.FaultProfile()
	}
	return ""
}

// ErrNotHello is returned when the first frame is not a hello.
var ErrNotHello = errors.New("telemetry: expected hello")

// AcceptPoller performs the server side of the handshake on an accepted
// connection with no deadline; prefer AcceptPollerWithTimeout in
// servers, where a silent client would otherwise pin a goroutine.
func AcceptPoller(conn net.Conn, key []byte) (*Poller, error) {
	return AcceptPollerWithTimeout(conn, key, 0)
}

// AcceptPollerWithTimeout performs the handshake with every frame op
// bounded by timeout, and leaves the same timeout armed for subsequent
// polls (adjustable via SetTimeout). A client that connects and sends
// nothing — the slow-loris — fails the handshake within timeout instead
// of hanging.
func AcceptPollerWithTimeout(conn net.Conn, key []byte, timeout time.Duration) (*Poller, error) {
	t, err := NewTunnel(conn, key)
	if err != nil {
		conn.Close()
		return nil, err
	}
	t.SetTimeout(timeout)
	raw, err := t.ReadFrame()
	if err != nil {
		t.Close()
		return nil, err
	}
	m, err := DecodeMessage(raw)
	if err != nil || (m.Type != frameHello && m.Type != frameHelloV2) {
		t.Close()
		if err == nil {
			err = ErrNotHello
		}
		return nil, err
	}
	p := &Poller{tunnel: t, Serial: m.Serial, agentWire: WireV1, wire: WireV1}
	if m.Type == frameHelloV2 {
		p.agentWire = m.Wire
		if p.agentWire > WireV2 {
			// A future agent announces higher; this backend tops out at
			// v2 and the poll's version byte tells the agent so.
			p.agentWire = WireV2
		}
	}
	return p, nil
}

// AgentWire returns the highest wire version the device announced.
func (p *Poller) AgentWire() byte { return p.agentWire }

// NegotiateWire picks the session's wire version: the minimum of what
// the backend wants and what the device announced. It returns the
// version that subsequent Polls will use.
func (p *Poller) NegotiateWire(want byte) byte {
	if want < WireV1 {
		want = WireV1
	}
	p.wire = want
	if p.wire > p.agentWire {
		p.wire = p.agentWire
	}
	return p.wire
}

// Wire returns the session's negotiated wire version.
func (p *Poller) Wire() byte { return p.wire }

// QueueDepth returns the device's remaining queue depth as of the last
// v2 batch — the agent's backpressure hint. Always zero on v1
// sessions, which don't carry the hint.
func (p *Poller) QueueDepth() int { return int(p.queueDepth.Load()) }

// SetTimeout bounds every subsequent frame op of the poller's tunnel.
func (p *Poller) SetTimeout(d time.Duration) { p.tunnel.SetTimeout(d) }

// Close closes the poller's tunnel.
func (p *Poller) Close() error { return p.tunnel.Close() }

// Poll requests up to max reports, acknowledges what it received, and
// returns the decoded reports. The ack-after-receive ordering means a
// crash between receive and ack re-delivers reports rather than losing
// them; the backend deduplicates by (serial, seqno).
func (p *Poller) Poll(max int) ([]*Report, error) {
	p.Metrics.Polls.Inc()
	sp := obs.StartSpan(p.Metrics.PollDur)
	out, err := p.poll(max)
	sp.End()
	if err != nil {
		p.Metrics.PollErrors.Inc()
		if p.Health != nil {
			p.Health.Observe(err)
		}
	} else {
		p.Metrics.Reports.Add(int64(len(out)))
	}
	return out, err
}

func (p *Poller) poll(max int) ([]*Report, error) {
	if p.wire >= WireV2 {
		return p.pollV2(max)
	}
	var pollStart time.Time
	if p.Trace != nil {
		pollStart = time.Now()
	}
	if err := p.tunnel.WriteFrame(EncodeMessage(&Message{Type: framePoll, Max: uint32(max)})); err != nil {
		return nil, err
	}
	p.Metrics.FramesOut.Inc()
	raw, err := p.tunnel.ReadFrame()
	if err != nil {
		return nil, err
	}
	p.Metrics.FramesIn.Inc()
	m, err := DecodeMessage(raw)
	if err != nil {
		return nil, err
	}
	if m.Type != frameReports {
		return nil, ErrBadFrameType
	}
	if p.Health != nil && m.Dropped > 0 {
		p.Health.SetQueueDrops(p.Serial, int(m.Dropped))
	}
	out := make([]*Report, 0, len(m.Reports))
	for _, rb := range m.Reports {
		r, err := UnmarshalReport(rb)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	if p.Trace != nil {
		// Agent-side spans riding the batch land in the daemon's
		// recorder (RecordEvent re-applies sampling, so a daemon at a
		// lower rate down-samples consistently); each sampled report
		// gets a daemon.read span covering this poll round trip.
		for _, sp := range m.Spans {
			p.Trace.RecordEvent(sp)
		}
		fault := connFaultProfile(p.tunnel.conn)
		durUS := time.Since(pollStart).Microseconds()
		for _, r := range out {
			id := trace.ID(r.TraceID)
			if !p.Trace.Sampled(id) {
				continue
			}
			p.Trace.RecordEvent(trace.Event{
				Trace:   id,
				Span:    trace.StageDaemonRead.SpanID(),
				Parent:  trace.StageDaemonRead.Parent(),
				Stage:   trace.StageDaemonRead.String(),
				Serial:  r.Serial,
				Seq:     r.SeqNo,
				StartUS: pollStart.UnixMicro(),
				DurUS:   durUS,
				Fault:   fault,
			})
		}
	}
	if p.BeforeAck != nil {
		if err := p.BeforeAck(out, m.Reports); err != nil {
			return nil, err
		}
	}
	if err := p.tunnel.WriteFrame(EncodeMessage(&Message{Type: frameAck, Count: uint32(len(m.Reports))})); err != nil {
		return nil, err
	}
	p.Metrics.FramesOut.Inc()
	return out, nil
}

// pollV2 is the negotiated-v2 poll: one framePollV2 out, one
// delta-coded frameBatch back, one WAL append and one ack for the whole
// batch. BeforeAckFrame gets the raw batch payload (the durable store
// logs it as a single WAL record); without it BeforeAck runs with nil
// raw and the durable store re-marshals per report.
func (p *Poller) pollV2(max int) ([]*Report, error) {
	var pollStart time.Time
	if p.Trace != nil {
		pollStart = time.Now()
	}
	if err := p.tunnel.WriteFrame(EncodeMessage(&Message{Type: framePollV2, Wire: p.wire, Max: uint32(max)})); err != nil {
		return nil, err
	}
	p.Metrics.FramesOut.Inc()
	raw, err := p.tunnel.ReadFrame()
	if err != nil {
		return nil, err
	}
	p.Metrics.FramesIn.Inc()
	m, err := DecodeMessage(raw)
	if err != nil {
		return nil, err
	}
	if m.Type != frameBatch {
		return nil, ErrBadFrameType
	}
	p.Metrics.BatchFrames.Inc()
	p.Metrics.BatchBytes.Add(int64(len(raw) - 1))
	p.queueDepth.Store(m.Batch.QueueDepth)
	if p.Health != nil && m.Batch.Dropped > 0 {
		p.Health.SetQueueDrops(p.Serial, int(m.Batch.Dropped))
	}
	out := m.Batch.Reports
	if p.Trace != nil {
		for _, sp := range m.Batch.Spans {
			p.Trace.RecordEvent(sp)
		}
		fault := connFaultProfile(p.tunnel.conn)
		durUS := time.Since(pollStart).Microseconds()
		for _, r := range out {
			id := trace.ID(r.TraceID)
			if !p.Trace.Sampled(id) {
				continue
			}
			p.Trace.RecordEvent(trace.Event{
				Trace:   id,
				Span:    trace.StageDaemonRead.SpanID(),
				Parent:  trace.StageDaemonRead.Parent(),
				Stage:   trace.StageDaemonRead.String(),
				Serial:  r.Serial,
				Seq:     r.SeqNo,
				StartUS: pollStart.UnixMicro(),
				DurUS:   durUS,
				Fault:   fault,
			})
		}
	}
	if p.BeforeAckFrame != nil {
		if err := p.BeforeAckFrame(out, raw[1:]); err != nil {
			return nil, err
		}
	} else if p.BeforeAck != nil {
		if err := p.BeforeAck(out, nil); err != nil {
			return nil, err
		}
	}
	if err := p.tunnel.WriteFrame(EncodeMessage(&Message{Type: frameAck, Count: uint32(len(out))})); err != nil {
		return nil, err
	}
	p.Metrics.FramesOut.Inc()
	return out, nil
}
