package telemetry

import (
	"reflect"
	"testing"
)

// FuzzDecodeMessage fuzzes the tunnel protocol decoder — including the
// optional trace-span block — for two properties: no panic on arbitrary
// bytes, and re-encode/re-decode stability (decode(encode(decode(b)))
// must equal decode(b)) so the wire evolution cannot silently drop or
// mutate fields. The checked-in seed corpus (testdata/fuzz) covers
// every frame type in both legacy (span-free) and traced form.
func FuzzDecodeMessage(f *testing.F) {
	// Legacy frames: the pre-tracing protocol, as PR 1 shipped it.
	f.Add(EncodeMessage(&Message{Type: frameHello, Serial: "Q2XX-ABCD-1234"}))
	f.Add(EncodeMessage(&Message{Type: framePoll, Max: 32}))
	f.Add(EncodeMessage(&Message{Type: frameAck, Count: 3}))
	f.Add(EncodeMessage(&Message{
		Type: frameReports, Dropped: 7,
		Reports: [][]byte{sampleReport().Marshal(), (&Report{Serial: "Q2"}).Marshal()},
	}))
	// Traced frames: span block present, reports stamped.
	traced := sampleReport()
	traced.TraceID = 0xdeadbeefcafe
	f.Add(EncodeMessage(&Message{
		Type: frameReports, Dropped: 1,
		Reports: [][]byte{traced.Marshal()},
		Spans:   sampleSpans(),
	}))
	f.Add(EncodeMessage(&Message{Type: frameReports, Spans: sampleSpans()[:1]}))
	// Degenerate shapes the decoder must reject or tolerate.
	f.Add([]byte{frameReports, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{frameReports, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0xff})

	// Wire v2 frames: the negotiation pair and a delta-coded batch,
	// routed through the same decoder.
	f.Add(EncodeMessage(&Message{Type: frameHelloV2, Wire: WireV2, Serial: "Q2XX-ABCD-1234"}))
	f.Add(EncodeMessage(&Message{Type: framePollV2, Wire: WireV2, Max: 64}))
	f.Add(EncodeMessage(&Message{Type: frameBatch, Batch: &BatchFrame{
		Version: WireV2, Dropped: 2, QueueDepth: 11,
		Reports: []*Report{mustV1RoundTrip(sampleReport())},
	}}))

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeMessage(b)
		if err != nil {
			return
		}
		re, err := DecodeMessage(EncodeMessage(m))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(m, re) {
			t.Fatalf("round trip unstable:\nfirst  %+v\nsecond %+v", m, re)
		}
		for _, rb := range m.Reports {
			_, _ = UnmarshalReport(rb)
		}
	})
}

// mustV1RoundTrip normalizes a report through the v1 codec, so fuzz
// seeds compare against proto3 presence semantics (nil-vs-empty).
func mustV1RoundTrip(r *Report) *Report {
	out, err := UnmarshalReport(r.Marshal())
	if err != nil {
		panic(err)
	}
	return out
}

// FuzzDecodeBatchFrame fuzzes the v2 batch decoder directly — the
// densest new attack surface: every count, dictionary reference, and
// delta comes off the wire. Properties: no panic, no unbounded
// allocation (dictionary overflow must be rejected before any
// proportional allocation), and re-encode/re-decode stability so the
// delta/dictionary rules cannot silently mutate a report.
func FuzzDecodeBatchFrame(f *testing.F) {
	// A healthy multi-report batch with shared dictionary + deltas.
	be := NewBatchEncoder(0)
	for i := 0; i < 4; i++ {
		r := sampleReport()
		r.Timestamp += uint64(i) * 60e6
		r.SeqNo = uint64(i + 1)
		be.Add(r)
	}
	f.Add(be.Finish(3, 17, sampleSpans()))
	// Empty batch.
	f.Add(NewBatchEncoder(0).Finish(0, 0, nil))
	// Dictionary overflow: declares 2^16+1 entries (varint 0x81 0x80
	// 0x04). The decoder must reject the count up front, not allocate
	// for it.
	f.Add([]byte{WireV2, 0, 0, 0x81, 0x80, 0x04})
	// Truncated deltas: a valid batch cut mid-report body.
	whole := be.Finish(0, 0, nil)
	f.Add(whole[:len(whole)-7])
	f.Add(whole[:len(whole)/2])
	// Mixed v1/v2 streams: a v1 frameReports payload and a v1-tagged
	// batch, both of which must be cleanly rejected, plus a v2 batch
	// with a v1 report glued on the end (trailing bytes).
	v1frame := EncodeMessage(&Message{Type: frameReports, Reports: [][]byte{sampleReport().Marshal()}})
	f.Add(v1frame[1:])
	f.Add(append([]byte{WireV1}, whole[1:]...))
	f.Add(append(append([]byte{}, whole...), sampleReport().Marshal()...))
	// Bad dictionary refs and a non-6-byte MAC entry.
	f.Add([]byte{WireV2, 0, 0, 1, 2, 'a', 'b', 1, 0x05, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		bf, err := DecodeBatchFrame(b)
		if err != nil {
			return
		}
		re, err := DecodeBatchFrame(EncodeBatchPayload(bf))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(bf, re) {
			t.Fatalf("batch round trip unstable:\nfirst  %+v\nsecond %+v", bf, re)
		}
	})
}
