package telemetry

import (
	"reflect"
	"testing"
)

// FuzzDecodeMessage fuzzes the tunnel protocol decoder — including the
// optional trace-span block — for two properties: no panic on arbitrary
// bytes, and re-encode/re-decode stability (decode(encode(decode(b)))
// must equal decode(b)) so the wire evolution cannot silently drop or
// mutate fields. The checked-in seed corpus (testdata/fuzz) covers
// every frame type in both legacy (span-free) and traced form.
func FuzzDecodeMessage(f *testing.F) {
	// Legacy frames: the pre-tracing protocol, as PR 1 shipped it.
	f.Add(EncodeMessage(&Message{Type: frameHello, Serial: "Q2XX-ABCD-1234"}))
	f.Add(EncodeMessage(&Message{Type: framePoll, Max: 32}))
	f.Add(EncodeMessage(&Message{Type: frameAck, Count: 3}))
	f.Add(EncodeMessage(&Message{
		Type: frameReports, Dropped: 7,
		Reports: [][]byte{sampleReport().Marshal(), (&Report{Serial: "Q2"}).Marshal()},
	}))
	// Traced frames: span block present, reports stamped.
	traced := sampleReport()
	traced.TraceID = 0xdeadbeefcafe
	f.Add(EncodeMessage(&Message{
		Type: frameReports, Dropped: 1,
		Reports: [][]byte{traced.Marshal()},
		Spans:   sampleSpans(),
	}))
	f.Add(EncodeMessage(&Message{Type: frameReports, Spans: sampleSpans()[:1]}))
	// Degenerate shapes the decoder must reject or tolerate.
	f.Add([]byte{frameReports, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{frameReports, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0xff})

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeMessage(b)
		if err != nil {
			return
		}
		re, err := DecodeMessage(EncodeMessage(m))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(m, re) {
			t.Fatalf("round trip unstable:\nfirst  %+v\nsecond %+v", m, re)
		}
		for _, rb := range m.Reports {
			_, _ = UnmarshalReport(rb)
		}
	})
}
