package telemetry

import (
	"bytes"
	"encoding/binary"
	"net"
	"reflect"
	"testing"
	"time"

	"wlanscale/internal/obs/trace"
)

func sampleSpans() []trace.Event {
	return []trace.Event{
		{
			Trace: 0xdeadbeefcafe, Span: 1, Parent: 0, Stage: "agent.enqueue",
			Serial: "Q2XX-ABCD-1234", Seq: 7, StartUS: 1700000000000000, DurUS: 42,
		},
		{
			Trace: 0xdeadbeefcafe, Span: 2, Parent: 1, Stage: "tunnel.write",
			Serial: "Q2XX-ABCD-1234", Seq: 7, StartUS: 1700000000000042, DurUS: 12000,
			Retries: 3, Fault: "reset@3", Err: "faultnet: injected connection failure",
		},
	}
}

func TestMessageSpansRoundTrip(t *testing.T) {
	rep := sampleReport()
	rep.TraceID = 0xdeadbeefcafe
	m := &Message{
		Type:    frameReports,
		Dropped: 5,
		Reports: [][]byte{rep.Marshal()},
		Spans:   sampleSpans(),
	}
	got, err := DecodeMessage(EncodeMessage(m))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Dropped != 5 || len(got.Reports) != 1 {
		t.Fatalf("reports lost: %+v", got)
	}
	if !reflect.DeepEqual(got.Spans, m.Spans) {
		t.Errorf("spans mismatch:\n got %+v\nwant %+v", got.Spans, m.Spans)
	}
	r, err := UnmarshalReport(got.Reports[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.TraceID != 0xdeadbeefcafe {
		t.Errorf("TraceID = %#x", r.TraceID)
	}
}

func TestLegacyReportsFrameUnchanged(t *testing.T) {
	// A batch with no spans must encode byte-identically to the
	// pre-tracing format: Type | Dropped | [len | report]... with no
	// marker, so old readers never see the span block.
	reports := [][]byte{sampleReport().Marshal(), (&Report{Serial: "X"}).Marshal()}
	m := &Message{Type: frameReports, Dropped: 2, Reports: reports}
	got := EncodeMessage(m)

	legacy := []byte{frameReports}
	legacy = binary.BigEndian.AppendUint32(legacy, 2)
	for _, r := range reports {
		legacy = binary.BigEndian.AppendUint32(legacy, uint32(len(r)))
		legacy = append(legacy, r...)
	}
	if !bytes.Equal(got, legacy) {
		t.Error("span-free frame differs from legacy encoding")
	}
	dec, err := DecodeMessage(legacy)
	if err != nil {
		t.Fatalf("decode legacy: %v", err)
	}
	if dec.Spans != nil || len(dec.Reports) != 2 {
		t.Fatalf("legacy decode: %+v", dec)
	}
}

func TestUntracedReportBytesUnchanged(t *testing.T) {
	// TraceID zero must leave the report encoding untouched — the
	// observe-only contract at the schema level.
	r := sampleReport()
	r.TraceID = 0
	plain := r.Marshal()
	r.TraceID = 1
	traced := r.Marshal()
	if bytes.Equal(plain, traced) {
		t.Fatal("trace field not encoded")
	}
	r.TraceID = 0
	if !bytes.Equal(plain, r.Marshal()) {
		t.Error("zero TraceID changed the encoding")
	}
}

// TestHarvestCarriesSpans runs the real agent/poller protocol over a
// pipe and checks the daemon-side recorder ends up with the
// agent.enqueue, tunnel.write, and daemon.read spans of every report.
func TestHarvestCarriesSpans(t *testing.T) {
	agentRec := trace.NewRecorder(256)
	agentTr := trace.New(agentRec, 2026, 1.0)
	a := NewAgent("Q2TRACE-1", testKey)
	a.EnableTrace(agentTr)
	for i := 0; i < 3; i++ {
		a.Enqueue(&Report{Serial: a.Serial, Timestamp: uint64(i)})
	}

	c1, c2 := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		a.ServeConn(c1)
	}()

	p, err := AcceptPollerWithTimeout(c2, testKey, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	daemonRec := trace.NewRecorder(256)
	p.Trace = trace.New(daemonRec, 2026, 1.0)
	reports, err := p.Poll(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports", len(reports))
	}
	p.Close()
	<-done

	for _, r := range reports {
		if r.TraceID == 0 {
			t.Fatalf("report seq %d untraced", r.SeqNo)
		}
		evs := daemonRec.Trace(trace.ID(r.TraceID))
		stages := make([]string, len(evs))
		for i, ev := range evs {
			stages[i] = ev.Stage
		}
		want := []string{"agent.enqueue", "tunnel.write", "daemon.read"}
		if !reflect.DeepEqual(stages, want) {
			t.Errorf("trace %016x stages = %v, want %v", r.TraceID, stages, want)
		}
	}
	// Agent-side recorder saw its own two stages.
	if id, evs, ok := agentRec.LastTrace(); !ok || len(evs) != 2 {
		t.Errorf("agent recorder: ok=%v id=%v n=%d", ok, id, len(evs))
	}
}

// TestTraceIDsDeterministicAcrossAgents pins that trace IDs depend only
// on (seed, serial, enqueue order), never on scheduling.
func TestTraceIDsDeterministicAcrossAgents(t *testing.T) {
	run := func() []uint64 {
		tr := trace.New(trace.NewRecorder(16), 7, 1.0)
		a := NewAgent("Q2DET-1", testKey)
		a.EnableTrace(tr)
		var ids []uint64
		for i := 0; i < 5; i++ {
			r := &Report{Serial: a.Serial}
			a.Enqueue(r)
			ids = append(ids, r.TraceID)
		}
		return ids
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Error("trace IDs differ across identical runs")
	}
}
