package telemetry

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"wlanscale/internal/obs/trace"
)

// Tunnel framing errors.
var (
	ErrBadMAC       = errors.New("telemetry: message authentication failed")
	ErrFrameTooBig  = errors.New("telemetry: frame exceeds limit")
	ErrShortKey     = errors.New("telemetry: key must be 32 bytes")
	ErrBadFrameType = errors.New("telemetry: unknown frame type")
)

// MaxFrameBytes bounds a single tunnel frame.
const MaxFrameBytes = 4 << 20

// Tunnel is an encrypted, authenticated, length-framed message stream
// over a net.Conn — the persistent management tunnel each device keeps
// to the backend. Frames are AES-256-CTR encrypted with a random IV and
// authenticated with HMAC-SHA256 (encrypt-then-MAC). A Tunnel is safe
// for one concurrent reader and one concurrent writer.
type Tunnel struct {
	conn   net.Conn
	encKey [32]byte
	macKey [32]byte
	// timeoutNS bounds each frame op; 0 disables deadlines.
	timeoutNS int64
}

// NewTunnel wraps conn with the given 32-byte pre-shared key. Distinct
// encryption and MAC keys are derived from it.
func NewTunnel(conn net.Conn, key []byte) (*Tunnel, error) {
	if len(key) != 32 {
		return nil, ErrShortKey
	}
	t := &Tunnel{conn: conn}
	t.encKey = sha256.Sum256(append([]byte("enc:"), key...))
	t.macKey = sha256.Sum256(append([]byte("mac:"), key...))
	return t, nil
}

// Close closes the underlying connection.
func (t *Tunnel) Close() error { return t.conn.Close() }

// SetTimeout bounds every subsequent frame op: each ReadFrame and
// WriteFrame must complete within d or fail with a timeout error. A
// stalled or black-holed peer therefore costs at most d, not a hung
// goroutine. Zero disables deadlines.
func (t *Tunnel) SetTimeout(d time.Duration) {
	atomic.StoreInt64(&t.timeoutNS, int64(d))
}

// armRead sets the per-op read deadline, if one is configured.
func (t *Tunnel) armRead() {
	if d := time.Duration(atomic.LoadInt64(&t.timeoutNS)); d > 0 {
		t.conn.SetReadDeadline(time.Now().Add(d))
	}
}

// armWrite sets the per-op write deadline, if one is configured.
func (t *Tunnel) armWrite() {
	if d := time.Duration(atomic.LoadInt64(&t.timeoutNS)); d > 0 {
		t.conn.SetWriteDeadline(time.Now().Add(d))
	}
}

// WriteFrame encrypts and sends one message.
func (t *Tunnel) WriteFrame(payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return ErrFrameTooBig
	}
	var iv [16]byte
	if _, err := rand.Read(iv[:]); err != nil {
		return fmt.Errorf("telemetry: iv: %w", err)
	}
	block, err := aes.NewCipher(t.encKey[:])
	if err != nil {
		return err
	}
	ct := make([]byte, len(payload))
	cipher.NewCTR(block, iv[:]).XORKeyStream(ct, payload)

	mac := hmac.New(sha256.New, t.macKey[:])
	mac.Write(iv[:])
	mac.Write(ct)
	tag := mac.Sum(nil)

	// Frame: len(4) | iv(16) | ciphertext | hmac(32).
	frame := make([]byte, 4, 4+16+len(ct)+32)
	binary.BigEndian.PutUint32(frame, uint32(16+len(ct)+32))
	frame = append(frame, iv[:]...)
	frame = append(frame, ct...)
	frame = append(frame, tag...)
	t.armWrite()
	_, err = t.conn.Write(frame)
	return err
}

// ReadFrame receives and decrypts one message.
func (t *Tunnel) ReadFrame() ([]byte, error) {
	var hdr [4]byte
	t.armRead()
	if _, err := io.ReadFull(t.conn, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes+48 {
		return nil, ErrFrameTooBig
	}
	if n < 48 {
		return nil, ErrBadMAC
	}
	body := make([]byte, n)
	t.armRead()
	if _, err := io.ReadFull(t.conn, body); err != nil {
		return nil, err
	}
	iv := body[:16]
	ct := body[16 : n-32]
	tag := body[n-32:]

	mac := hmac.New(sha256.New, t.macKey[:])
	mac.Write(iv)
	mac.Write(ct)
	if !hmac.Equal(tag, mac.Sum(nil)) {
		return nil, ErrBadMAC
	}
	block, err := aes.NewCipher(t.encKey[:])
	if err != nil {
		return nil, err
	}
	pt := make([]byte, len(ct))
	cipher.NewCTR(block, iv).XORKeyStream(pt, ct)
	return pt, nil
}

// Protocol frame types. The backend pulls: it sends polls, the device
// answers with report batches, and the backend acknowledges so the
// device can drop queued data (Section 2's "backend polls for queued
// information when the connection is reestablished").
const (
	frameHello   = 1 // device -> backend: serial announcement
	framePoll    = 2 // backend -> device: poll(maxReports)
	frameReports = 3 // device -> backend: batch of reports
	frameAck     = 4 // backend -> device: ack(count)

	// Wire v2 (DESIGN.md §10). A v2-capable device opens with
	// frameHelloV2 carrying its maximum wire version; a v2-capable
	// backend answers its polls with framePollV2 and the device replies
	// with delta-coded frameBatch frames. Either side speaking only the
	// v1 constants above keeps the session byte-identical to v1: a v1
	// backend rejects frameHelloV2 before the first poll (the agent then
	// falls back to frameHello on reconnect), and a v1 device never sees
	// framePollV2 because it never announced v2.
	frameHelloV2 = 5 // device -> backend: version + serial announcement
	framePollV2  = 6 // backend -> device: poll(maxReports), answer in v2
	frameBatch   = 7 // device -> backend: delta-coded report batch
)

// Message is one decoded protocol message.
type Message struct {
	Type    byte
	Serial  string   // Hello, HelloV2
	Wire    byte     // HelloV2: device's max wire version; PollV2 echo
	Max     uint32   // Poll, PollV2
	Count   uint32   // Ack
	Dropped uint32   // Reports: device's cumulative queue-overflow drops
	Reports [][]byte // Reports (encoded Report messages)
	// Batch is the decoded v2 payload of a frameBatch message. Its
	// Reports/Spans/Dropped supersede the flat fields above for that
	// frame type.
	Batch *BatchFrame
	// Spans are agent-side trace span events riding along with a report
	// batch (see internal/obs/trace). The block is optional on the wire:
	// it is omitted when empty, so frames from untraced agents are
	// byte-identical to the pre-tracing format, and a trace-aware reader
	// accepts legacy frames unchanged.
	Spans []trace.Event
}

// spanBlockMarker introduces the optional span block inside a
// frameReports payload. It is read from the same position as a report
// length, and no real report length can collide with it: report lengths
// are bounded by the frame size, which the tunnel caps at MaxFrameBytes
// (4 MiB), far below 0xFFFFFFFF.
const spanBlockMarker = 0xFFFFFFFF

// EncodeMessage serializes a protocol message.
func EncodeMessage(m *Message) []byte {
	out := []byte{m.Type}
	switch m.Type {
	case frameHello:
		out = append(out, []byte(m.Serial)...)
	case frameHelloV2:
		out = append(out, m.Wire)
		out = append(out, []byte(m.Serial)...)
	case framePoll:
		out = binary.BigEndian.AppendUint32(out, m.Max)
	case framePollV2:
		out = append(out, m.Wire)
		out = binary.BigEndian.AppendUint32(out, m.Max)
	case frameBatch:
		if m.Batch != nil {
			out = append(out, EncodeBatchPayload(m.Batch)...)
		}
	case frameAck:
		out = binary.BigEndian.AppendUint32(out, m.Count)
	case frameReports:
		out = binary.BigEndian.AppendUint32(out, m.Dropped)
		for _, r := range m.Reports {
			out = binary.BigEndian.AppendUint32(out, uint32(len(r)))
			out = append(out, r...)
		}
		if len(m.Spans) > 0 {
			out = binary.BigEndian.AppendUint32(out, spanBlockMarker)
			for _, sp := range m.Spans {
				b := encodeSpan(sp)
				out = binary.BigEndian.AppendUint32(out, uint32(len(b)))
				out = append(out, b...)
			}
		}
	}
	return out
}

// DecodeMessage parses a protocol message.
func DecodeMessage(b []byte) (*Message, error) {
	if len(b) == 0 {
		return nil, io.ErrUnexpectedEOF
	}
	m := &Message{Type: b[0]}
	rest := b[1:]
	switch m.Type {
	case frameHello:
		m.Serial = string(rest)
	case frameHelloV2:
		if len(rest) < 1 {
			return nil, io.ErrUnexpectedEOF
		}
		m.Wire = rest[0]
		m.Serial = string(rest[1:])
	case framePollV2:
		if len(rest) < 5 {
			return nil, io.ErrUnexpectedEOF
		}
		m.Wire = rest[0]
		m.Max = binary.BigEndian.Uint32(rest[1:])
	case frameBatch:
		bf, err := DecodeBatchFrame(rest)
		if err != nil {
			return nil, err
		}
		m.Batch = bf
		m.Dropped = bf.Dropped
		m.Spans = bf.Spans
	case framePoll, frameAck:
		if len(rest) < 4 {
			return nil, io.ErrUnexpectedEOF
		}
		v := binary.BigEndian.Uint32(rest)
		if m.Type == framePoll {
			m.Max = v
		} else {
			m.Count = v
		}
	case frameReports:
		if len(rest) < 4 {
			return nil, io.ErrUnexpectedEOF
		}
		m.Dropped = binary.BigEndian.Uint32(rest)
		rest = rest[4:]
		inSpans := false
		for len(rest) > 0 {
			if len(rest) < 4 {
				return nil, io.ErrUnexpectedEOF
			}
			n := binary.BigEndian.Uint32(rest)
			rest = rest[4:]
			if n == spanBlockMarker && !inSpans {
				// Everything after the marker is span records.
				inSpans = true
				continue
			}
			if uint32(len(rest)) < n {
				return nil, io.ErrUnexpectedEOF
			}
			if inSpans {
				sp, err := decodeSpan(rest[:n])
				if err != nil {
					return nil, err
				}
				m.Spans = append(m.Spans, sp)
			} else {
				m.Reports = append(m.Reports, rest[:n])
			}
			rest = rest[n:]
		}
	default:
		return nil, ErrBadFrameType
	}
	return m, nil
}
