package telemetry

import (
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"wlanscale/internal/dot11"
)

// variedReport derives a report from sampleReport with index-dependent
// values, so batches exercise both delta continuity (shared serial,
// near-identical counters) and structural variation.
func variedReport(i int) *Report {
	r := sampleReport()
	r.Timestamp += uint64(i) * 60e6
	r.SeqNo = uint64(i + 1)
	for j := range r.Radios {
		r.Radios[j].CycleUS += uint64(i * 1000)
		r.Radios[j].TxUS += uint64(i * 7)
	}
	if i%3 == 0 {
		r.Clients = append(r.Clients, ClientRecord{
			MAC:    dot11.MAC{0xde, 0xad, 0, 0, 0, byte(i)},
			Band:   dot11.Band24,
			RSSIdB: int32(-10 + i),
		})
	}
	if i%4 == 1 {
		r.Crashes = nil
	}
	return r
}

func TestBatchRoundTrip(t *testing.T) {
	var want []*Report
	be := NewBatchEncoder(0)
	for i := 0; i < 20; i++ {
		r := variedReport(i)
		want = append(want, r)
		if !be.Add(r) {
			t.Fatalf("unbounded encoder refused report %d", i)
		}
	}
	payload := be.Finish(7, 42, nil)
	f, err := DecodeBatchFrame(payload)
	if err != nil {
		t.Fatalf("DecodeBatchFrame: %v", err)
	}
	if f.Dropped != 7 || f.QueueDepth != 42 {
		t.Errorf("header = (dropped %d, depth %d), want (7, 42)", f.Dropped, f.QueueDepth)
	}
	if len(f.Reports) != len(want) {
		t.Fatalf("decoded %d reports, want %d", len(f.Reports), len(want))
	}
	for i := range want {
		// The v2 round trip must land on the same struct the v1 round
		// trip of the same report lands on.
		v1, err := UnmarshalReport(want[i].Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(f.Reports[i], v1) {
			t.Errorf("report %d mismatch:\n got %+v\nwant %+v", i, f.Reports[i], v1)
		}
	}
}

func TestBatchRoundTripEmpty(t *testing.T) {
	payload := NewBatchEncoder(0).Finish(0, 0, nil)
	f, err := DecodeBatchFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Reports) != 0 || f.Dropped != 0 || f.QueueDepth != 0 {
		t.Errorf("empty batch decoded to %+v", f)
	}
}

func TestBatchSizeBudget(t *testing.T) {
	one := NewBatchEncoder(0)
	one.Add(variedReport(0))
	budget := one.Size() + 8 // room for one report, not two
	be := NewBatchEncoder(budget)
	if !be.Add(variedReport(0)) {
		t.Fatal("first report must always fit")
	}
	if be.Add(variedReport(1)) {
		t.Fatalf("second report accepted past budget: size %d > budget %d", be.Size(), budget)
	}
	if be.Len() != 1 {
		t.Fatalf("Len = %d after declined add, want 1", be.Len())
	}
	// The declined report's dictionary additions must have rolled back:
	// the payload still decodes and holds exactly one report.
	f, err := DecodeBatchFrame(be.Finish(0, 0, nil))
	if err != nil {
		t.Fatalf("decode after rollback: %v", err)
	}
	if len(f.Reports) != 1 {
		t.Fatalf("decoded %d reports, want 1", len(f.Reports))
	}
}

// TestBatchTinyBudgetFirstAlwaysFits pins liveness: a report larger
// than the whole budget still ships alone rather than wedging the poll.
func TestBatchTinyBudgetFirstAlwaysFits(t *testing.T) {
	be := NewBatchEncoder(16)
	if !be.Add(sampleReport()) {
		t.Fatal("oversized first report must still be accepted")
	}
	if be.Add(sampleReport()) {
		t.Fatal("second report must be declined")
	}
}

// TestBatchCompression is the codec-level half of the issue's ≥3×
// bytes/report target: a steady-state batch (same device, repeating
// string universe, slowly-moving counters) must encode to under a third
// of the v1 bytes.
func TestBatchCompression(t *testing.T) {
	const n = 32
	v1 := 0
	be := NewBatchEncoder(0)
	for i := 0; i < n; i++ {
		r := variedReport(i)
		v1 += len(r.Marshal())
		be.Add(r)
	}
	v2 := len(be.Finish(0, 0, nil))
	t.Logf("v1 = %d bytes, v2 = %d bytes (%.2fx)", v1, v2, float64(v1)/float64(v2))
	if v2*3 > v1 {
		t.Errorf("batch = %d bytes for %d reports; v1 = %d; want >=3x reduction", v2, n, v1)
	}
}

func TestDecodeBatchFrameErrors(t *testing.T) {
	good := func() []byte {
		be := NewBatchEncoder(0)
		be.Add(sampleReport())
		return be.Finish(0, 0, nil)
	}()
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"bad version", []byte{0x7f, 0, 0, 0, 0}},
		{"v1 not v2", append([]byte{WireV1}, good[1:]...)},
		{"truncated", good[:len(good)/2]},
		{"trailing", append(append([]byte{}, good...), 0x00)},
	}
	for _, tc := range cases {
		if _, err := DecodeBatchFrame(tc.b); err == nil {
			t.Errorf("%s: decode succeeded, want error", tc.name)
		}
	}
	if _, err := DecodeBatchFrame(append(append([]byte{}, good...), 0x00)); !errors.Is(err, ErrTrailingBytes) {
		t.Errorf("trailing bytes: err = %v, want ErrTrailingBytes", err)
	}
}

// harvestV2 runs one agent/poller session over a pipe with the given
// negotiated wire version, polls once, and returns what landed.
func harvestV2(t *testing.T, agentWire byte, negotiate byte, max int, n int) ([]*Report, *Poller, *Agent, chan error) {
	t.Helper()
	a := NewAgent("Q2BV-0001", testKey)
	a.Wire = agentWire
	for i := 0; i < n; i++ {
		a.Enqueue(variedReport(i))
	}
	c1, c2 := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- a.ServeConn(c1) }()
	p, err := AcceptPoller(c2, testKey)
	if err != nil {
		t.Fatalf("AcceptPoller: %v", err)
	}
	p.NegotiateWire(negotiate)
	got, err := p.Poll(max)
	if err != nil {
		t.Fatalf("Poll: %v", err)
	}
	return got, p, a, done
}

func TestHarvestV2EndToEnd(t *testing.T) {
	const n = 12
	got, p, a, _ := harvestV2(t, WireV2, WireV2, 64, n)
	defer p.Close()
	if p.Wire() != WireV2 {
		t.Fatalf("negotiated wire = %d, want v2", p.Wire())
	}
	if len(got) != n {
		t.Fatalf("harvested %d reports, want %d", len(got), n)
	}
	for i, r := range got {
		want := variedReport(i)
		want.SeqNo = uint64(i + 1) // Enqueue stamps sequence numbers
		v1, _ := UnmarshalReport(want.Marshal())
		if !reflect.DeepEqual(r, v1) {
			t.Errorf("report %d mismatch over v2 wire", i)
		}
	}
	// The ack must have drained the agent's queue, and the backpressure
	// hint must read empty.
	deadline := time.Now().Add(5 * time.Second)
	for a.QueueLen() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ql := a.QueueLen(); ql != 0 {
		t.Errorf("queue length after ack = %d, want 0", ql)
	}
	if d := p.QueueDepth(); d != 0 {
		t.Errorf("queue depth hint = %d, want 0", d)
	}
}

func TestHarvestV2BackpressureHint(t *testing.T) {
	const n, max = 20, 5
	got, p, _, _ := harvestV2(t, WireV2, WireV2, max, n)
	defer p.Close()
	if len(got) != max {
		t.Fatalf("harvested %d, want %d", len(got), max)
	}
	if d := p.QueueDepth(); d != n-max {
		t.Errorf("queue depth hint = %d, want %d", d, n-max)
	}
}

// TestV2AgentV1Backend pins the negotiation matrix row where the
// backend declines v2: a v2 agent must answer plain framePoll with a
// legacy frameReports and the harvest must be lossless.
func TestV2AgentV1Backend(t *testing.T) {
	const n = 8
	got, p, _, _ := harvestV2(t, WireV2, WireV1, 64, n)
	defer p.Close()
	if p.Wire() != WireV1 {
		t.Fatalf("negotiated wire = %d, want v1", p.Wire())
	}
	if p.AgentWire() != WireV2 {
		t.Fatalf("agent wire = %d, want v2", p.AgentWire())
	}
	if len(got) != n {
		t.Fatalf("harvested %d reports, want %d", len(got), n)
	}
}

// TestV1AgentV2Backend: a backend asking for v2 against a v1 agent must
// clamp to v1 — the agent never announced v2, so the poller must not
// send framePollV2.
func TestV1AgentV2Backend(t *testing.T) {
	const n = 8
	got, p, _, _ := harvestV2(t, 0, WireV2, 64, n)
	defer p.Close()
	if p.Wire() != WireV1 {
		t.Fatalf("negotiated wire = %d, want v1 clamp", p.Wire())
	}
	if len(got) != n {
		t.Fatalf("harvested %d reports, want %d", len(got), n)
	}
}

// TestWireFallbackSticky simulates a legacy backend that rejects the v2
// hello by closing the connection. The agent's next session must open
// with a v1 hello and harvest normally.
func TestWireFallbackSticky(t *testing.T) {
	a := NewAgent("Q2BV-0002", testKey)
	a.Wire = WireV2
	a.Enqueue(sampleReport())

	// Session 1: "legacy backend" reads the hello, fails to like it,
	// hangs up before ever polling.
	c1, c2 := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- a.ServeConn(c1) }()
	legacy, err := NewTunnel(c2, testKey)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := legacy.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if raw[0] != frameHelloV2 {
		t.Fatalf("first hello frame type = %d, want frameHelloV2", raw[0])
	}
	legacy.Close()
	if err := <-done; err == nil {
		t.Fatal("session against legacy backend ended without error")
	}
	if w := a.wireVersion(); w != WireV1 {
		t.Fatalf("wire after rejected v2 hello = %d, want sticky v1", w)
	}

	// Session 2: the agent must speak v1 from the hello on.
	c3, c4 := net.Pipe()
	go func() { a.ServeConn(c3) }()
	p, err := AcceptPoller(c4, testKey)
	if err != nil {
		t.Fatalf("v1 accept after fallback: %v", err)
	}
	defer p.Close()
	if p.AgentWire() != WireV1 {
		t.Fatalf("agent announced wire %d after fallback, want v1", p.AgentWire())
	}
	got, err := p.Poll(16)
	if err != nil {
		t.Fatalf("Poll after fallback: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("harvested %d reports after fallback, want 1", len(got))
	}
}

// TestBatchAgeOverride: a queue whose head has aged past BatchMaxAge
// drains at full poll width even under a one-report size budget.
func TestBatchAgeOverride(t *testing.T) {
	a := NewAgent("Q2BV-0003", testKey)
	a.Wire = WireV2
	a.BatchBytes = 16 // absurdly small: would trickle one report per poll
	a.BatchMaxAge = time.Nanosecond
	for i := 0; i < 6; i++ {
		a.Enqueue(variedReport(i))
	}
	time.Sleep(2 * time.Millisecond) // let the head age past BatchMaxAge
	payload, err := a.buildBatch(64, "")
	if err != nil {
		t.Fatal(err)
	}
	f, err := DecodeBatchFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Reports) != 6 {
		t.Fatalf("aged batch carried %d reports, want all 6", len(f.Reports))
	}
}

func TestBatchFlushOnSize(t *testing.T) {
	a := NewAgent("Q2BV-0004", testKey)
	a.Wire = WireV2
	a.BatchBytes = 600 // roughly one sample report
	a.BatchMaxAge = time.Hour
	for i := 0; i < 6; i++ {
		a.Enqueue(variedReport(i))
	}
	payload, err := a.buildBatch(64, "")
	if err != nil {
		t.Fatal(err)
	}
	f, err := DecodeBatchFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Reports) == 0 || len(f.Reports) == 6 {
		t.Fatalf("size-budgeted batch carried %d reports, want partial flush", len(f.Reports))
	}
	if int(f.QueueDepth) != 6-len(f.Reports) {
		t.Errorf("queue depth hint = %d, want %d", f.QueueDepth, 6-len(f.Reports))
	}
}

// TestBatchMessageRoundTrip pins frameBatch through the generic
// Message codec (the fuzz round-trip path).
func TestBatchMessageRoundTrip(t *testing.T) {
	bf := &BatchFrame{Version: WireV2, Dropped: 3, QueueDepth: 9}
	for i := 0; i < 4; i++ {
		r, _ := UnmarshalReport(variedReport(i).Marshal())
		bf.Reports = append(bf.Reports, r)
	}
	m := &Message{Type: frameBatch, Batch: bf}
	got, err := DecodeMessage(EncodeMessage(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Batch == nil {
		t.Fatal("decoded message has no batch")
	}
	if got.Batch.Dropped != 3 || got.Batch.QueueDepth != 9 {
		t.Errorf("batch header = %+v", got.Batch)
	}
	if !reflect.DeepEqual(got.Batch.Reports, bf.Reports) {
		t.Error("batch reports mismatch through Message codec")
	}
	for i, r := range got.Batch.Reports {
		if r.SeqNo != uint64(i+1) {
			t.Errorf("report %d seq = %d", i, r.SeqNo)
		}
	}
}

// TestHelloV2MessageRoundTrip covers the two new control frames.
func TestHelloV2MessageRoundTrip(t *testing.T) {
	for _, m := range []*Message{
		{Type: frameHelloV2, Wire: WireV2, Serial: "Q2XX-META-77"},
		{Type: framePollV2, Wire: WireV2, Max: 123456},
	} {
		got, err := DecodeMessage(EncodeMessage(m))
		if err != nil {
			t.Fatalf("type %d: %v", m.Type, err)
		}
		if got.Wire != m.Wire || got.Serial != m.Serial || got.Max != m.Max {
			t.Errorf("type %d round trip: got %+v want %+v", m.Type, got, m)
		}
	}
}

// TestV1FramesByteIdentical pins that nothing about the v2 work changed
// a single byte of the legacy frames (the "v1 peers remain
// byte-identical" requirement, belt to the fuzz corpus's suspenders).
func TestV1FramesByteIdentical(t *testing.T) {
	r := sampleReport().Marshal()
	cases := []struct {
		m    *Message
		want []byte
	}{
		{&Message{Type: frameHello, Serial: "AB"}, []byte{1, 'A', 'B'}},
		{&Message{Type: framePoll, Max: 0x01020304}, []byte{2, 1, 2, 3, 4}},
		{&Message{Type: frameAck, Count: 5}, []byte{4, 0, 0, 0, 5}},
	}
	for _, tc := range cases {
		if got := EncodeMessage(tc.m); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("type %d encoded to % x, want % x", tc.m.Type, got, tc.want)
		}
	}
	rep := EncodeMessage(&Message{Type: frameReports, Dropped: 2, Reports: [][]byte{r}})
	want := append([]byte{3, 0, 0, 0, 2, 0, 0, byte(len(r) >> 8), byte(len(r))}, r...)
	if !reflect.DeepEqual(rep, want) {
		t.Errorf("frameReports bytes changed:\n got % x\nwant % x", rep[:16], want[:16])
	}
}
