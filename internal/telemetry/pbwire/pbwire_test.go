package pbwire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestVarintRoundTrip(t *testing.T) {
	err := quick.Check(func(v uint64) bool {
		var e Encoder
		e.Uint64(1, v)
		if v == 0 {
			return e.Len() == 0 // proto3 zero omission
		}
		d := NewDecoder(e.Bytes())
		f, wt, err := d.Field()
		if err != nil || f != 1 || wt != TypeVarint {
			return false
		}
		got, err := d.Uint64()
		return err == nil && got == v && d.Done()
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Error(err)
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	err := quick.Check(func(v int64) bool {
		var e Encoder
		e.Int64(2, v)
		if v == 0 {
			return e.Len() == 0
		}
		d := NewDecoder(e.Bytes())
		if _, _, err := d.Field(); err != nil {
			return false
		}
		got, err := d.Int64()
		return err == nil && got == v
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Error(err)
	}
}

func TestZigzagSmallNegatives(t *testing.T) {
	// Zigzag must keep small negatives small on the wire.
	var e Encoder
	e.Int64(1, -1)
	if e.Len() != 2 {
		t.Errorf("-1 encoded in %d bytes, want 2 (tag + 1)", e.Len())
	}
}

func TestDoubleRoundTrip(t *testing.T) {
	err := quick.Check(func(v float64) bool {
		var e Encoder
		e.Double(3, v)
		if v == 0 {
			return e.Len() == 0
		}
		d := NewDecoder(e.Bytes())
		if _, _, err := d.Field(); err != nil {
			return false
		}
		got, err := d.Double()
		return err == nil && (got == v || (got != got && v != v)) // NaN-safe
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Error(err)
	}
}

func TestStringAndBytes(t *testing.T) {
	var e Encoder
	e.String(1, "hello")
	e.BytesField(2, []byte{0, 1, 2})
	d := NewDecoder(e.Bytes())
	f, _, _ := d.Field()
	if f != 1 {
		t.Fatalf("field = %d", f)
	}
	s, err := d.String()
	if err != nil || s != "hello" {
		t.Errorf("string = %q, %v", s, err)
	}
	f, _, _ = d.Field()
	if f != 2 {
		t.Fatalf("field = %d", f)
	}
	b, err := d.Bytes()
	if err != nil || !bytes.Equal(b, []byte{0, 1, 2}) {
		t.Errorf("bytes = %v, %v", b, err)
	}
	if !d.Done() {
		t.Error("not done")
	}
}

func TestBoolRoundTrip(t *testing.T) {
	var e Encoder
	e.Bool(4, true)
	e.Bool(5, false) // omitted
	d := NewDecoder(e.Bytes())
	f, _, _ := d.Field()
	if f != 4 {
		t.Fatalf("field = %d", f)
	}
	v, err := d.Bool()
	if err != nil || !v {
		t.Errorf("bool = %v, %v", v, err)
	}
	if !d.Done() {
		t.Error("false bool was encoded")
	}
}

func TestNestedMessage(t *testing.T) {
	var inner Encoder
	inner.Uint64(1, 42)
	inner.String(2, "nested")
	var outer Encoder
	outer.Message(7, &inner)
	outer.Uint64(8, 9)

	d := NewDecoder(outer.Bytes())
	f, wt, _ := d.Field()
	if f != 7 || wt != TypeBytes {
		t.Fatalf("field = %d wt = %d", f, wt)
	}
	nb, err := d.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	nd := NewDecoder(nb)
	f, _, _ = nd.Field()
	v, _ := nd.Uint64()
	if f != 1 || v != 42 {
		t.Errorf("nested field 1 = %d", v)
	}
	f, _, _ = nd.Field()
	s, _ := nd.String()
	if f != 2 || s != "nested" {
		t.Errorf("nested field 2 = %q", s)
	}
	f, _, _ = d.Field()
	v, _ = d.Uint64()
	if f != 8 || v != 9 {
		t.Errorf("outer field 8 = %d", v)
	}
}

func TestEmptyNestedMessagePreserved(t *testing.T) {
	var inner, outer Encoder
	outer.Message(3, &inner)
	d := NewDecoder(outer.Bytes())
	f, wt, err := d.Field()
	if err != nil || f != 3 || wt != TypeBytes {
		t.Fatalf("empty nested message lost: %d %d %v", f, wt, err)
	}
	b, err := d.Bytes()
	if err != nil || len(b) != 0 {
		t.Errorf("payload = %v", b)
	}
}

func TestSkipUnknownFields(t *testing.T) {
	// Schema evolution: a v2 sender adds fields a v1 reader skips.
	var e Encoder
	e.Uint64(1, 5)
	e.Double(99, 3.14)      // unknown fixed64
	e.String(100, "future") // unknown bytes
	e.Uint64(101, 7)        // unknown varint
	e.Uint64(2, 6)

	d := NewDecoder(e.Bytes())
	var got1, got2 uint64
	for !d.Done() {
		f, wt, err := d.Field()
		if err != nil {
			t.Fatal(err)
		}
		switch f {
		case 1:
			got1, _ = d.Uint64()
		case 2:
			got2, _ = d.Uint64()
		default:
			if err := d.Skip(wt); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got1 != 5 || got2 != 6 {
		t.Errorf("known fields = %d, %d", got1, got2)
	}
}

func TestSkipFixed32(t *testing.T) {
	// Hand-build a fixed32 field (tag 1, wiretype 5).
	raw := []byte{1<<3 | 5, 1, 2, 3, 4}
	d := NewDecoder(raw)
	_, wt, err := d.Field()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Skip(wt); err != nil {
		t.Fatal(err)
	}
	if !d.Done() {
		t.Error("fixed32 not fully skipped")
	}
}

func TestTruncationErrors(t *testing.T) {
	var e Encoder
	e.String(1, "hello world")
	full := e.Bytes()
	for cut := 1; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		_, _, err := d.Field()
		if err == nil {
			_, err = d.String()
		}
		if err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestVarintOverflow(t *testing.T) {
	raw := []byte{1 << 3, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	d := NewDecoder(raw)
	if _, _, err := d.Field(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Uint64(); err != ErrOverflow {
		t.Errorf("overflow err = %v", err)
	}
}

func TestBadWireTypeSkip(t *testing.T) {
	d := NewDecoder(nil)
	if err := d.Skip(WireType(3)); err != ErrBadWireType {
		t.Errorf("group wire type err = %v", err)
	}
}

func TestDecoderFuzzNoPanic(t *testing.T) {
	err := quick.Check(func(b []byte) bool {
		d := NewDecoder(b)
		for i := 0; i < 100 && !d.Done(); i++ {
			_, wt, err := d.Field()
			if err != nil {
				return true
			}
			if d.Skip(wt) != nil {
				return true
			}
		}
		return true
	}, &quick.Config{MaxCount: 3000})
	if err != nil {
		t.Error(err)
	}
}

func TestEncoderReset(t *testing.T) {
	var e Encoder
	e.Uint64(1, 10)
	e.Reset()
	if e.Len() != 0 {
		t.Error("reset did not clear")
	}
	e.Uint64(1, 20)
	d := NewDecoder(e.Bytes())
	d.Field()
	if v, _ := d.Uint64(); v != 20 {
		t.Errorf("after reset = %d", v)
	}
}

func BenchmarkEncodeReport(b *testing.B) {
	b.ReportAllocs()
	var e Encoder
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.Uint64(1, uint64(i))
		e.String(2, "ap-serial-Q2XX-1234")
		e.Double(3, 0.42)
		e.Int64(4, -55)
	}
}

func BenchmarkDecodeReport(b *testing.B) {
	var e Encoder
	e.Uint64(1, 123456)
	e.String(2, "ap-serial-Q2XX-1234")
	e.Double(3, 0.42)
	e.Int64(4, -55)
	raw := e.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(raw)
		for !d.Done() {
			_, wt, err := d.Field()
			if err != nil {
				b.Fatal(err)
			}
			if err := d.Skip(wt); err != nil {
				b.Fatal(err)
			}
		}
	}
}
