// Package pbwire implements the Google Protocol Buffers wire format
// (varint/zigzag encoding, tagged fields, length-delimited records) that
// the Meraki reporting protocol is built on (paper Section 2: protocols
// "built with Google Protocol Buffers to minimize reporting overhead").
// It is a from-scratch, stdlib-only implementation of the wire layer —
// enough to define and evolve the report schema without code generation.
package pbwire

import (
	"errors"
	"math"
)

// WireType is a protobuf wire type.
type WireType uint8

const (
	// TypeVarint is wire type 0: varint-encoded integers and booleans.
	TypeVarint WireType = 0
	// TypeFixed64 is wire type 1: 8-byte little-endian values.
	TypeFixed64 WireType = 1
	// TypeBytes is wire type 2: length-delimited payloads (strings,
	// bytes, nested messages, packed repeated fields).
	TypeBytes WireType = 2
	// TypeFixed32 is wire type 5: 4-byte little-endian values.
	TypeFixed32 WireType = 5
)

// Errors returned by the decoder.
var (
	ErrTruncated   = errors.New("pbwire: truncated message")
	ErrOverflow    = errors.New("pbwire: varint overflows 64 bits")
	ErrBadWireType = errors.New("pbwire: unsupported wire type")
)

// Encoder appends protobuf-encoded fields to a buffer. The zero value
// is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded message.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current encoded length.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the buffer, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

func (e *Encoder) tag(field int, wt WireType) {
	e.varint(uint64(field)<<3 | uint64(wt))
}

func (e *Encoder) varint(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

// Uint64 writes field as a varint.
func (e *Encoder) Uint64(field int, v uint64) {
	if v == 0 {
		return // proto3 semantics: zero values are omitted
	}
	e.tag(field, TypeVarint)
	e.varint(v)
}

// Int64 writes field as a zigzag-encoded signed varint (sint64).
func (e *Encoder) Int64(field int, v int64) {
	if v == 0 {
		return
	}
	e.tag(field, TypeVarint)
	e.varint(uint64(v<<1) ^ uint64(v>>63))
}

// Bool writes field as a varint 0/1.
func (e *Encoder) Bool(field int, v bool) {
	if !v {
		return
	}
	e.tag(field, TypeVarint)
	e.varint(1)
}

// Double writes field as a fixed64 IEEE 754 value.
func (e *Encoder) Double(field int, v float64) {
	if v == 0 {
		return
	}
	e.tag(field, TypeFixed64)
	bits := math.Float64bits(v)
	e.buf = append(e.buf,
		byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
		byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
}

// Bytes writes field as a length-delimited payload.
func (e *Encoder) BytesField(field int, v []byte) {
	if len(v) == 0 {
		return
	}
	e.tag(field, TypeBytes)
	e.varint(uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// String writes field as a length-delimited string.
func (e *Encoder) String(field int, v string) {
	if v == "" {
		return
	}
	e.tag(field, TypeBytes)
	e.varint(uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// Message writes a nested message field from its encoded bytes. Unlike
// BytesField it is written even when empty, so presence survives.
func (e *Encoder) Message(field int, enc *Encoder) {
	e.tag(field, TypeBytes)
	e.varint(uint64(len(enc.buf)))
	e.buf = append(e.buf, enc.buf...)
}

// Decoder iterates the fields of an encoded message.
type Decoder struct {
	buf []byte
	pos int
}

// NewDecoder wraps an encoded message.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Done reports whether the decoder has consumed the whole message.
func (d *Decoder) Done() bool { return d.pos >= len(d.buf) }

func (d *Decoder) readVarint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if d.pos >= len(d.buf) {
			return 0, ErrTruncated
		}
		b := d.buf[d.pos]
		d.pos++
		if shift == 63 && b > 1 {
			return 0, ErrOverflow
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
		if shift > 63 {
			return 0, ErrOverflow
		}
	}
}

// Field reads the next field tag. After Field returns, call the typed
// reader matching the returned wire type (or Skip).
func (d *Decoder) Field() (field int, wt WireType, err error) {
	tag, err := d.readVarint()
	if err != nil {
		return 0, 0, err
	}
	return int(tag >> 3), WireType(tag & 7), nil
}

// Uint64 reads a varint value.
func (d *Decoder) Uint64() (uint64, error) { return d.readVarint() }

// Int64 reads a zigzag-encoded signed value.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.readVarint()
	if err != nil {
		return 0, err
	}
	return int64(v>>1) ^ -int64(v&1), nil
}

// Bool reads a varint as a boolean.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.readVarint()
	return v != 0, err
}

// Double reads a fixed64 IEEE 754 value.
func (d *Decoder) Double() (float64, error) {
	if d.pos+8 > len(d.buf) {
		return 0, ErrTruncated
	}
	var bits uint64
	for i := 0; i < 8; i++ {
		bits |= uint64(d.buf[d.pos+i]) << (8 * i)
	}
	d.pos += 8
	return math.Float64frombits(bits), nil
}

// Bytes reads a length-delimited payload. The returned slice aliases
// the input buffer.
func (d *Decoder) Bytes() ([]byte, error) {
	n, err := d.readVarint()
	if err != nil {
		return nil, err
	}
	if uint64(d.pos)+n > uint64(len(d.buf)) {
		return nil, ErrTruncated
	}
	out := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return out, nil
}

// String reads a length-delimited payload as a string.
func (d *Decoder) String() (string, error) {
	b, err := d.Bytes()
	return string(b), err
}

// Skip discards a field of the given wire type — how decoders tolerate
// schema evolution (the backend "is designed to handle schema changes").
func (d *Decoder) Skip(wt WireType) error {
	switch wt {
	case TypeVarint:
		_, err := d.readVarint()
		return err
	case TypeFixed64:
		if d.pos+8 > len(d.buf) {
			return ErrTruncated
		}
		d.pos += 8
		return nil
	case TypeBytes:
		_, err := d.Bytes()
		return err
	case TypeFixed32:
		if d.pos+4 > len(d.buf) {
			return ErrTruncated
		}
		d.pos += 4
		return nil
	default:
		return ErrBadWireType
	}
}
