// The v2 batch-frame primitives: untagged varints and a per-batch
// shared dictionary. The v1 report schema is plain protobuf — every
// field tagged, every string shipped inline — which is robust but
// redundant inside a harvest batch, where consecutive reports from one
// device repeat the serial, the MAC universe, the user-agent strings,
// and near-identical monotone counters. Wire v2 keeps pbwire's varint
// vocabulary but drops the tags: fields travel untagged in a fixed
// order, integers as deltas against the previous report, and every
// string or byte blob as a small reference into a dictionary shared by
// the whole batch. The layer here is byte-level only; the
// report-specific delta rules live in internal/telemetry (batchwire.go)
// and the layout in DESIGN.md §10.

package pbwire

import "errors"

// MaxDictEntries bounds a batch dictionary. A decoder must refuse a
// dictionary that declares more entries — an attacker-controlled count
// must not translate into unbounded allocation ("dictionary overflow",
// exercised by FuzzDecodeBatchFrame's seed corpus).
const MaxDictEntries = 1 << 16

// Batch decoding errors.
var (
	ErrDictOverflow = errors.New("pbwire: dictionary exceeds entry limit")
	ErrBadDictRef   = errors.New("pbwire: dictionary reference out of range")
)

// Varint appends an untagged varint — the v2 batch body is a fixed
// field order, so tags would be pure overhead.
func (e *Encoder) Varint(v uint64) { e.varint(v) }

// Zigzag appends an untagged zigzag-encoded signed varint, the delta
// encoding for fields that can move both ways (timestamps after an
// agent clock step, RSSI, counter resets).
func (e *Encoder) Zigzag(v int64) { e.varint(uint64(v<<1) ^ uint64(v>>63)) }

// LenBytes appends an untagged length-prefixed byte string.
func (e *Encoder) LenBytes(b []byte) {
	e.varint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Append writes raw bytes (an already-encoded sub-block).
func (e *Encoder) Append(b []byte) { e.buf = append(e.buf, b...) }

// DictBuilder assigns dense references to byte strings in first-use
// order while a batch is encoded. Ref is stable for the builder's
// lifetime, so the decoder can resolve references while reading the
// batch body sequentially.
type DictBuilder struct {
	ids     map[string]uint64
	entries []string
	bytes   int // sum of entry lengths, for size accounting
}

// Ref returns the dictionary reference for s, assigning the next free
// slot on first use.
func (b *DictBuilder) Ref(s string) uint64 {
	if id, ok := b.ids[s]; ok {
		return id
	}
	if b.ids == nil {
		b.ids = make(map[string]uint64)
	}
	id := uint64(len(b.entries))
	b.ids[s] = id
	b.entries = append(b.entries, s)
	b.bytes += len(s)
	return id
}

// RefBytes is Ref for a byte slice key.
func (b *DictBuilder) RefBytes(p []byte) uint64 { return b.Ref(string(p)) }

// Len returns the number of entries assigned so far.
func (b *DictBuilder) Len() int { return len(b.entries) }

// Mark returns a rollback point: the current entry count.
func (b *DictBuilder) Mark() int { return len(b.entries) }

// Rollback discards every entry assigned at or after mark — how a batch
// encoder un-reserves the dictionary additions of a report that turned
// out not to fit the size budget.
func (b *DictBuilder) Rollback(mark int) {
	for _, s := range b.entries[mark:] {
		b.bytes -= len(s)
		delete(b.ids, s)
	}
	b.entries = b.entries[:mark]
}

// EncodedSize returns an upper bound on the encoded dictionary block:
// count varint plus, per entry, a length varint and the bytes.
func (b *DictBuilder) EncodedSize() int {
	// 5 bytes generously covers any realistic length varint.
	return 5 + b.bytes + 5*len(b.entries)
}

// Encode writes the dictionary block: entry count, then each entry
// length-prefixed, in reference order.
func (b *DictBuilder) Encode(e *Encoder) {
	e.Varint(uint64(len(b.entries)))
	for _, s := range b.entries {
		e.LenBytes([]byte(s))
	}
}

// Dict is the decoded dictionary of one batch.
type Dict struct {
	entries [][]byte
}

// DecodeDict reads a dictionary block. Entry count and total size are
// bounded by the input length (each entry consumes at least one byte),
// and the declared count is checked against MaxDictEntries before any
// allocation proportional to it.
func DecodeDict(d *Decoder) (*Dict, error) {
	n, err := d.Uint64()
	if err != nil {
		return nil, err
	}
	if n > MaxDictEntries {
		return nil, ErrDictOverflow
	}
	dict := &Dict{}
	for i := uint64(0); i < n; i++ {
		b, err := d.Bytes()
		if err != nil {
			return nil, err
		}
		dict.entries = append(dict.entries, b)
	}
	return dict, nil
}

// Bytes resolves a reference. The returned slice aliases the decoder's
// input buffer.
func (d *Dict) Bytes(ref uint64) ([]byte, error) {
	if ref >= uint64(len(d.entries)) {
		return nil, ErrBadDictRef
	}
	return d.entries[ref], nil
}

// String resolves a reference as a string.
func (d *Dict) String(ref uint64) (string, error) {
	b, err := d.Bytes(ref)
	return string(b), err
}

// Len returns the number of entries.
func (d *Dict) Len() int { return len(d.entries) }
