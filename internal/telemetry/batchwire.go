package telemetry

import (
	"errors"
	"fmt"
	"io"

	"wlanscale/internal/dot11"
	"wlanscale/internal/obs/trace"
	"wlanscale/internal/telemetry/pbwire"
)

// Wire protocol versions. WireV1 is the original per-report protobuf
// protocol; WireV2 coalesces a poll's reports into one delta-coded
// batch frame with a shared dictionary (DESIGN.md §10). Version choice
// is per session: the agent advertises its maximum in the hello, the
// backend picks, and every frame of the session follows that choice, so
// a v1 peer on either side keeps speaking the legacy byte-identical
// protocol.
const (
	WireV1 byte = 1
	WireV2 byte = 2
)

// ParseWire parses a -wire flag value ("v1" or "v2") into a wire
// version constant.
func ParseWire(s string) (byte, error) {
	switch s {
	case "v1", "1":
		return WireV1, nil
	case "v2", "2":
		return WireV2, nil
	}
	return 0, fmt.Errorf("telemetry: unknown wire version %q (want v1 or v2)", s)
}

// Batch decoding errors.
var (
	ErrBadWireVersion = errors.New("telemetry: unsupported batch wire version")
	ErrBadMACEntry    = errors.New("telemetry: dictionary MAC entry is not 6 bytes")
	ErrTrailingBytes  = errors.New("telemetry: trailing bytes after batch frame")
)

// BatchFrame is one decoded v2 report batch: everything a frameReports
// carried in v1, plus the device's remaining queue depth — the
// backpressure hint merakid uses to switch a hot device into drain-mode
// polling instead of waiting out the poll tick.
type BatchFrame struct {
	Version    byte
	Dropped    uint32
	QueueDepth uint32
	Reports    []*Report
	Spans      []trace.Event
}

// batchPrev is the cross-report delta context. Both codec directions
// maintain it identically: each report's timestamp, sequence number,
// device MAC, and radio counters are coded relative to the previous
// report in the batch.
type batchPrev struct {
	mac, ts, seq uint64
	radios       []RadioStats
	// clients and crashes enable same-index delta coding of the big
	// movers inside those sections (per-app byte counters, crash PCs):
	// consecutive reports from one device list the same clients in the
	// same order, so positional deltas almost always land.
	clients []ClientRecord
	crashes []CrashRecord
}

// set records r as the previous report for the next delta round.
func (p *batchPrev) set(mac uint64, r *Report) {
	p.mac = mac
	p.ts = r.Timestamp
	p.seq = r.SeqNo
	p.radios = append(p.radios[:0], r.Radios...)
	p.clients = append(p.clients[:0], r.Clients...)
	p.crashes = append(p.crashes[:0], r.Crashes...)
}

// delta codes cur relative to prev in mod-2^64 arithmetic: small moves
// in either direction become small zigzag varints, and the decoder's
// prev+delta inverts exactly even across wraparound.
func delta(cur, prev uint64) int64 { return int64(cur - prev) }

// BatchEncoder incrementally builds a v2 batch frame payload under a
// byte budget. Add encodes one report (tentatively — dictionary
// additions roll back if the report doesn't fit) and reports whether it
// was accepted; the agent's adaptive batcher keeps adding until Add
// declines, then ships what fits (flush-on-size). A zero maxBytes means
// no size budget.
type BatchEncoder struct {
	maxBytes int
	dict     pbwire.DictBuilder
	body     pbwire.Encoder
	scratch  pbwire.Encoder
	n        int
	prev     batchPrev
}

// NewBatchEncoder returns an encoder with the given frame-size budget
// in payload bytes (0 = unbounded).
func NewBatchEncoder(maxBytes int) *BatchEncoder {
	return &BatchEncoder{maxBytes: maxBytes}
}

// Len returns the number of reports accepted so far.
func (b *BatchEncoder) Len() int { return b.n }

// Size returns the projected payload size if Finish were called now
// with no spans.
func (b *BatchEncoder) Size() int {
	// version byte + dropped/queueDepth/report-count/span-count varints.
	const overhead = 1 + 5 + 5 + 5 + 5
	return overhead + b.dict.EncodedSize() + b.body.Len()
}

// Add encodes r into the batch. It returns false — leaving the batch
// unchanged — when the batch already holds at least one report and
// adding r would push the payload past the size budget. The first
// report always fits: a poll must make progress even on a report larger
// than the budget.
func (b *BatchEncoder) Add(r *Report) bool {
	mark := b.dict.Mark()
	b.scratch.Reset()
	encodeReportDelta(&b.scratch, &b.dict, &b.prev, r)
	if b.maxBytes > 0 && b.n > 0 && b.Size()+b.scratch.Len() > b.maxBytes {
		b.dict.Rollback(mark)
		return false
	}
	b.body.Append(b.scratch.Bytes())
	b.n++
	b.prev.set(r.MAC.Uint64(), r)
	return true
}

// Finish assembles the frame payload (everything after the frame-type
// byte): version, dropped and queue-depth varints, the shared
// dictionary, the delta-coded report bodies, and the span block.
func (b *BatchEncoder) Finish(dropped, queueDepth uint32, spans []trace.Event) []byte {
	var e pbwire.Encoder
	e.Append([]byte{WireV2})
	e.Varint(uint64(dropped))
	e.Varint(uint64(queueDepth))
	b.dict.Encode(&e)
	e.Varint(uint64(b.n))
	e.Append(b.body.Bytes())
	e.Varint(uint64(len(spans)))
	for _, sp := range spans {
		e.LenBytes(encodeSpan(sp))
	}
	return e.Bytes()
}

// EncodeBatchPayload encodes a BatchFrame in one shot (no size budget)
// — the re-encode path for EncodeMessage and the fuzz round-trip
// property.
func EncodeBatchPayload(f *BatchFrame) []byte {
	be := NewBatchEncoder(0)
	for _, r := range f.Reports {
		be.Add(r)
	}
	return be.Finish(f.Dropped, f.QueueDepth, f.Spans)
}

// encodeReportDelta writes one report body. Field order is fixed
// (DESIGN.md §10): tags would be redundant inside a versioned frame.
// Presence follows v1's proto3 rules — empty user agents and
// zero-length fingerprints are not shipped — so a v1 and a v2 round
// trip of the same report decode to the same struct.
func encodeReportDelta(e *pbwire.Encoder, dict *pbwire.DictBuilder, prev *batchPrev, r *Report) {
	e.Varint(dict.Ref(r.Serial))
	e.Zigzag(delta(r.MAC.Uint64(), prev.mac))
	e.Zigzag(delta(r.Timestamp, prev.ts))
	e.Zigzag(delta(r.SeqNo, prev.seq))
	e.Varint(r.TraceID)

	e.Varint(uint64(len(r.Radios)))
	for j, rs := range r.Radios {
		if j < len(prev.radios) {
			pr := prev.radios[j]
			e.Zigzag(delta(uint64(rs.Band), uint64(pr.Band)))
			e.Zigzag(delta(uint64(rs.Channel), uint64(pr.Channel)))
			e.Zigzag(delta(uint64(rs.WidthMHz), uint64(pr.WidthMHz)))
			e.Zigzag(delta(rs.CycleUS, pr.CycleUS))
			e.Zigzag(delta(rs.RxClearUS, pr.RxClearUS))
			e.Zigzag(delta(rs.Rx11US, pr.Rx11US))
			e.Zigzag(delta(rs.TxUS, pr.TxUS))
		} else {
			e.Varint(uint64(rs.Band))
			e.Varint(uint64(rs.Channel))
			e.Varint(uint64(rs.WidthMHz))
			e.Varint(rs.CycleUS)
			e.Varint(rs.RxClearUS)
			e.Varint(rs.Rx11US)
			e.Varint(rs.TxUS)
		}
	}

	e.Varint(uint64(len(r.Clients)))
	for ci, c := range r.Clients {
		e.Varint(dict.RefBytes(c.MAC[:]))
		e.Varint(uint64(c.Band))
		e.Zigzag(int64(c.RSSIdB))
		caps := c.Caps.Marshal()
		e.Varint(dict.RefBytes(caps[:]))
		uas := 0
		for _, ua := range c.UserAgents {
			if ua != "" {
				uas++
			}
		}
		e.Varint(uint64(uas))
		for _, ua := range c.UserAgents {
			if ua != "" {
				e.Varint(dict.Ref(ua))
			}
		}
		fps := 0
		for _, fp := range c.DHCPFingerprints {
			if len(fp) > 0 {
				fps++
			}
		}
		e.Varint(uint64(fps))
		for _, fp := range c.DHCPFingerprints {
			if len(fp) > 0 {
				e.Varint(dict.RefBytes(fp))
			}
		}
		e.Varint(uint64(len(c.Apps)))
		for ai, a := range c.Apps {
			e.Varint(dict.Ref(a.App))
			// App byte counters are the heaviest integers in a report
			// (cumulative, often multi-GB); delta against the previous
			// report's same-position app when one exists.
			if ci < len(prev.clients) && ai < len(prev.clients[ci].Apps) {
				pa := prev.clients[ci].Apps[ai]
				e.Zigzag(delta(a.UpBytes, pa.UpBytes))
				e.Zigzag(delta(a.DownBytes, pa.DownBytes))
			} else {
				e.Varint(a.UpBytes)
				e.Varint(a.DownBytes)
			}
			e.Varint(uint64(a.Flows))
		}
	}

	e.Varint(uint64(len(r.Neighbors)))
	for _, n := range r.Neighbors {
		e.Varint(dict.RefBytes(n.BSSID[:]))
		e.Varint(dict.Ref(n.SSID))
		e.Varint(uint64(n.Band))
		e.Varint(uint64(n.Channel))
		e.Zigzag(int64(n.RSSIdB))
		e.Varint(dict.Ref(n.Vendor))
	}

	e.Varint(uint64(len(r.LinkWindows)))
	for _, l := range r.LinkWindows {
		e.Varint(dict.RefBytes(l.Peer[:]))
		e.Varint(uint64(l.Band))
		e.Varint(uint64(l.Sent))
		e.Varint(uint64(l.Delivered))
	}

	e.Varint(uint64(len(r.ScanSamples)))
	for _, s := range r.ScanSamples {
		e.Varint(uint64(s.Band))
		e.Varint(uint64(s.Channel))
		e.Varint(uint64(s.BusyPermille))
		e.Varint(uint64(s.DecodablePermille))
	}

	e.Varint(uint64(len(r.Crashes)))
	for ki, c := range r.Crashes {
		// Crash PCs repeat across reports of the same crashing firmware;
		// the timestamp and PC delta against the previous report's
		// same-position crash when one exists.
		if ki < len(prev.crashes) {
			pc := prev.crashes[ki]
			e.Zigzag(delta(c.Timestamp, pc.Timestamp))
			e.Varint(uint64(c.Kind))
			e.Varint(dict.Ref(c.Firmware))
			e.Zigzag(delta(c.PC, pc.PC))
		} else {
			e.Varint(c.Timestamp)
			e.Varint(uint64(c.Kind))
			e.Varint(dict.Ref(c.Firmware))
			e.Varint(c.PC)
		}
		e.Varint(uint64(c.FreeKB))
		e.Varint(uint64(c.NeighborCount))
	}
}

// DecodeBatchFrame decodes a v2 batch payload (everything after the
// frame-type byte). It is the attack surface of the v2 protocol —
// every count, reference, and delta comes off the wire — so it must
// fail cleanly on arbitrary input (FuzzDecodeBatchFrame) and never
// allocate proportionally to an unvalidated count.
func DecodeBatchFrame(payload []byte) (*BatchFrame, error) {
	if len(payload) < 1 {
		return nil, io.ErrUnexpectedEOF
	}
	if payload[0] != WireV2 {
		return nil, fmt.Errorf("%w: %d", ErrBadWireVersion, payload[0])
	}
	f := &BatchFrame{Version: payload[0]}
	d := pbwire.NewDecoder(payload[1:])
	v, err := d.Uint64()
	if err != nil {
		return nil, err
	}
	f.Dropped = uint32(v)
	if v, err = d.Uint64(); err != nil {
		return nil, err
	}
	f.QueueDepth = uint32(v)
	dict, err := pbwire.DecodeDict(d)
	if err != nil {
		return nil, err
	}
	count, err := d.Uint64()
	if err != nil {
		return nil, err
	}
	var prev batchPrev
	for i := uint64(0); i < count; i++ {
		r, err := decodeReportDelta(d, dict, &prev)
		if err != nil {
			return nil, err
		}
		f.Reports = append(f.Reports, r)
	}
	nspans, err := d.Uint64()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nspans; i++ {
		sb, err := d.Bytes()
		if err != nil {
			return nil, err
		}
		sp, err := decodeSpan(sb)
		if err != nil {
			return nil, err
		}
		f.Spans = append(f.Spans, sp)
	}
	if !d.Done() {
		return nil, ErrTrailingBytes
	}
	return f, nil
}

// dictMAC resolves a dictionary reference that must be a 6-byte MAC.
func dictMAC(dict *pbwire.Dict, ref uint64) (dot11.MAC, error) {
	b, err := dict.Bytes(ref)
	if err != nil {
		return dot11.MAC{}, err
	}
	if len(b) != 6 {
		return dot11.MAC{}, ErrBadMACEntry
	}
	var m dot11.MAC
	copy(m[:], b)
	return m, nil
}

// decodeReportDelta mirrors encodeReportDelta, advancing prev so the
// next report's deltas resolve.
func decodeReportDelta(d *pbwire.Decoder, dict *pbwire.Dict, prev *batchPrev) (*Report, error) {
	r := &Report{}
	ref, err := d.Uint64()
	if err != nil {
		return nil, err
	}
	if r.Serial, err = dict.String(ref); err != nil {
		return nil, err
	}
	dv, err := d.Int64()
	if err != nil {
		return nil, err
	}
	mac := prev.mac + uint64(dv)
	r.MAC = dot11.MACFromPacked(mac)
	if dv, err = d.Int64(); err != nil {
		return nil, err
	}
	r.Timestamp = prev.ts + uint64(dv)
	if dv, err = d.Int64(); err != nil {
		return nil, err
	}
	r.SeqNo = prev.seq + uint64(dv)
	if r.TraceID, err = d.Uint64(); err != nil {
		return nil, err
	}

	n, err := d.Uint64()
	if err != nil {
		return nil, err
	}
	for j := uint64(0); j < n; j++ {
		var rs RadioStats
		if int(j) < len(prev.radios) {
			pr := prev.radios[j]
			var ds [7]int64
			for k := range ds {
				if ds[k], err = d.Int64(); err != nil {
					return nil, err
				}
			}
			rs.Band = dot11.Band(uint64(pr.Band) + uint64(ds[0]))
			rs.Channel = int(uint64(pr.Channel) + uint64(ds[1]))
			rs.WidthMHz = int(uint64(pr.WidthMHz) + uint64(ds[2]))
			rs.CycleUS = pr.CycleUS + uint64(ds[3])
			rs.RxClearUS = pr.RxClearUS + uint64(ds[4])
			rs.Rx11US = pr.Rx11US + uint64(ds[5])
			rs.TxUS = pr.TxUS + uint64(ds[6])
		} else {
			var vs [7]uint64
			for k := range vs {
				if vs[k], err = d.Uint64(); err != nil {
					return nil, err
				}
			}
			rs.Band = dot11.Band(vs[0])
			rs.Channel = int(vs[1])
			rs.WidthMHz = int(vs[2])
			rs.CycleUS = vs[3]
			rs.RxClearUS = vs[4]
			rs.Rx11US = vs[5]
			rs.TxUS = vs[6]
		}
		r.Radios = append(r.Radios, rs)
	}

	if n, err = d.Uint64(); err != nil {
		return nil, err
	}
	for j := uint64(0); j < n; j++ {
		var c ClientRecord
		if ref, err = d.Uint64(); err != nil {
			return nil, err
		}
		if c.MAC, err = dictMAC(dict, ref); err != nil {
			return nil, err
		}
		v, err := d.Uint64()
		if err != nil {
			return nil, err
		}
		c.Band = dot11.Band(v)
		sv, err := d.Int64()
		if err != nil {
			return nil, err
		}
		c.RSSIdB = int32(sv)
		if ref, err = d.Uint64(); err != nil {
			return nil, err
		}
		cb, err := dict.Bytes(ref)
		if err != nil {
			return nil, err
		}
		if len(cb) == 2 {
			// Mirror v1's tolerance: a capability blob of the wrong
			// length is ignored, not fatal.
			c.Caps = dot11.UnmarshalCapabilities([2]byte{cb[0], cb[1]})
		}
		if n2, err := d.Uint64(); err != nil {
			return nil, err
		} else {
			for k := uint64(0); k < n2; k++ {
				if ref, err = d.Uint64(); err != nil {
					return nil, err
				}
				s, err := dict.String(ref)
				if err != nil {
					return nil, err
				}
				// Empty entries are skipped on encode (proto3 presence);
				// skip them here too so decode∘encode is stable.
				if s != "" {
					c.UserAgents = append(c.UserAgents, s)
				}
			}
		}
		if n2, err := d.Uint64(); err != nil {
			return nil, err
		} else {
			for k := uint64(0); k < n2; k++ {
				if ref, err = d.Uint64(); err != nil {
					return nil, err
				}
				b, err := dict.Bytes(ref)
				if err != nil {
					return nil, err
				}
				if len(b) == 0 {
					continue
				}
				fp := make([]byte, len(b))
				copy(fp, b)
				c.DHCPFingerprints = append(c.DHCPFingerprints, fp)
			}
		}
		if n2, err := d.Uint64(); err != nil {
			return nil, err
		} else {
			for k := uint64(0); k < n2; k++ {
				var a AppUsageRecord
				if ref, err = d.Uint64(); err != nil {
					return nil, err
				}
				if a.App, err = dict.String(ref); err != nil {
					return nil, err
				}
				if int(j) < len(prev.clients) && int(k) < len(prev.clients[j].Apps) {
					pa := prev.clients[j].Apps[k]
					var du, dd int64
					if du, err = d.Int64(); err != nil {
						return nil, err
					}
					if dd, err = d.Int64(); err != nil {
						return nil, err
					}
					a.UpBytes = pa.UpBytes + uint64(du)
					a.DownBytes = pa.DownBytes + uint64(dd)
				} else {
					if a.UpBytes, err = d.Uint64(); err != nil {
						return nil, err
					}
					if a.DownBytes, err = d.Uint64(); err != nil {
						return nil, err
					}
				}
				if v, err = d.Uint64(); err != nil {
					return nil, err
				}
				a.Flows = uint32(v)
				c.Apps = append(c.Apps, a)
			}
		}
		r.Clients = append(r.Clients, c)
	}

	if n, err = d.Uint64(); err != nil {
		return nil, err
	}
	for j := uint64(0); j < n; j++ {
		var nb NeighborRecord
		if ref, err = d.Uint64(); err != nil {
			return nil, err
		}
		if nb.BSSID, err = dictMAC(dict, ref); err != nil {
			return nil, err
		}
		if ref, err = d.Uint64(); err != nil {
			return nil, err
		}
		if nb.SSID, err = dict.String(ref); err != nil {
			return nil, err
		}
		v, err := d.Uint64()
		if err != nil {
			return nil, err
		}
		nb.Band = dot11.Band(v)
		if v, err = d.Uint64(); err != nil {
			return nil, err
		}
		nb.Channel = int(v)
		sv, err := d.Int64()
		if err != nil {
			return nil, err
		}
		nb.RSSIdB = int32(sv)
		if ref, err = d.Uint64(); err != nil {
			return nil, err
		}
		if nb.Vendor, err = dict.String(ref); err != nil {
			return nil, err
		}
		r.Neighbors = append(r.Neighbors, nb)
	}

	if n, err = d.Uint64(); err != nil {
		return nil, err
	}
	for j := uint64(0); j < n; j++ {
		var l LinkWindow
		if ref, err = d.Uint64(); err != nil {
			return nil, err
		}
		if l.Peer, err = dictMAC(dict, ref); err != nil {
			return nil, err
		}
		v, err := d.Uint64()
		if err != nil {
			return nil, err
		}
		l.Band = dot11.Band(v)
		if v, err = d.Uint64(); err != nil {
			return nil, err
		}
		l.Sent = uint32(v)
		if v, err = d.Uint64(); err != nil {
			return nil, err
		}
		l.Delivered = uint32(v)
		r.LinkWindows = append(r.LinkWindows, l)
	}

	if n, err = d.Uint64(); err != nil {
		return nil, err
	}
	for j := uint64(0); j < n; j++ {
		var s ScanSample
		var vs [4]uint64
		for k := range vs {
			if vs[k], err = d.Uint64(); err != nil {
				return nil, err
			}
		}
		s.Band = dot11.Band(vs[0])
		s.Channel = int(vs[1])
		s.BusyPermille = uint32(vs[2])
		s.DecodablePermille = uint32(vs[3])
		r.ScanSamples = append(r.ScanSamples, s)
	}

	if n, err = d.Uint64(); err != nil {
		return nil, err
	}
	for j := uint64(0); j < n; j++ {
		var c CrashRecord
		deltaCoded := int(j) < len(prev.crashes)
		if deltaCoded {
			dv, err := d.Int64()
			if err != nil {
				return nil, err
			}
			c.Timestamp = prev.crashes[j].Timestamp + uint64(dv)
		} else if c.Timestamp, err = d.Uint64(); err != nil {
			return nil, err
		}
		v, err := d.Uint64()
		if err != nil {
			return nil, err
		}
		c.Kind = uint8(v)
		if ref, err = d.Uint64(); err != nil {
			return nil, err
		}
		if c.Firmware, err = dict.String(ref); err != nil {
			return nil, err
		}
		if deltaCoded {
			dv, err := d.Int64()
			if err != nil {
				return nil, err
			}
			c.PC = prev.crashes[j].PC + uint64(dv)
		} else if c.PC, err = d.Uint64(); err != nil {
			return nil, err
		}
		if v, err = d.Uint64(); err != nil {
			return nil, err
		}
		c.FreeKB = uint32(v)
		if v, err = d.Uint64(); err != nil {
			return nil, err
		}
		c.NeighborCount = uint32(v)
		r.Crashes = append(r.Crashes, c)
	}

	prev.set(mac, r)
	return r, nil
}
