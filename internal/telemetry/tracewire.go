package telemetry

import (
	"wlanscale/internal/obs/trace"
	"wlanscale/internal/telemetry/pbwire"
)

// Span events ride the tunnel inside the optional span block of a
// frameReports payload, pbwire-encoded like everything else on the
// wire. The Index field is deliberately not shipped: it is
// recorder-local and reassigned on the receiving side.
const (
	fSpanTrace   = 1
	fSpanSpan    = 2
	fSpanParent  = 3
	fSpanSerial  = 4
	fSpanSeq     = 5
	fSpanStartUS = 6
	fSpanDurUS   = 7
	fSpanRetries = 8
	fSpanFault   = 9
	fSpanErr     = 10
)

func encodeSpan(ev trace.Event) []byte {
	var e pbwire.Encoder
	e.Uint64(fSpanTrace, uint64(ev.Trace))
	e.Uint64(fSpanSpan, uint64(ev.Span))
	e.Uint64(fSpanParent, uint64(ev.Parent))
	e.String(fSpanSerial, ev.Serial)
	e.Uint64(fSpanSeq, ev.Seq)
	e.Int64(fSpanStartUS, ev.StartUS)
	e.Int64(fSpanDurUS, ev.DurUS)
	e.Uint64(fSpanRetries, uint64(ev.Retries))
	e.String(fSpanFault, ev.Fault)
	e.String(fSpanErr, ev.Err)
	return e.Bytes()
}

func decodeSpan(b []byte) (trace.Event, error) {
	var ev trace.Event
	d := pbwire.NewDecoder(b)
	for !d.Done() {
		f, wt, err := d.Field()
		if err != nil {
			return ev, err
		}
		switch f {
		case fSpanTrace:
			v, err := d.Uint64()
			if err != nil {
				return ev, err
			}
			ev.Trace = trace.ID(v)
		case fSpanSpan:
			v, err := d.Uint64()
			if err != nil {
				return ev, err
			}
			ev.Span = uint32(v)
		case fSpanParent:
			v, err := d.Uint64()
			if err != nil {
				return ev, err
			}
			ev.Parent = uint32(v)
		case fSpanSerial:
			if ev.Serial, err = d.String(); err != nil {
				return ev, err
			}
		case fSpanSeq:
			if ev.Seq, err = d.Uint64(); err != nil {
				return ev, err
			}
		case fSpanStartUS:
			if ev.StartUS, err = d.Int64(); err != nil {
				return ev, err
			}
		case fSpanDurUS:
			if ev.DurUS, err = d.Int64(); err != nil {
				return ev, err
			}
		case fSpanRetries:
			v, err := d.Uint64()
			if err != nil {
				return ev, err
			}
			ev.Retries = int(v)
		case fSpanFault:
			if ev.Fault, err = d.String(); err != nil {
				return ev, err
			}
		case fSpanErr:
			if ev.Err, err = d.String(); err != nil {
				return ev, err
			}
		default:
			if err := d.Skip(wt); err != nil {
				return ev, err
			}
		}
	}
	// The stage name travels implicitly as the span ID.
	ev.Stage = trace.Stage(ev.Span).String()
	return ev, nil
}
