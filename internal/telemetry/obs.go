package telemetry

import (
	"wlanscale/internal/obs"
)

// Observability for the harvest path. Metric structs here are plain
// value types whose fields are nil until attached to a registry, so an
// un-instrumented Agent or Poller (the zero value) pays nothing — obs
// metrics are no-ops on nil receivers.

// HarvestMetrics counts the backend side of the harvest protocol: poll
// round trips, frames on the wire, and reports received. One instance
// is shared by every poller of a daemon (the counters are atomic).
type HarvestMetrics struct {
	// Polls counts poll round trips started; PollErrors the ones that
	// failed (timeout, corrupt frame, teardown mid-poll).
	Polls, PollErrors *obs.Counter
	// Reports counts reports successfully received and decoded.
	Reports *obs.Counter
	// FramesOut and FramesIn count tunnel frames written (poll, ack)
	// and read (report batches).
	FramesOut, FramesIn *obs.Counter
	// BatchFrames counts v2 delta-coded batch frames received;
	// BatchBytes accumulates their payload bytes, so bytes/report under
	// wire v2 is BatchBytes / Reports.
	BatchFrames, BatchBytes *obs.Counter
	// PollDur is the poll round-trip latency, microseconds.
	PollDur *obs.Histogram
}

// NewHarvestMetrics registers the harvest counters ("harvest.*") on
// reg. A nil registry yields all-nil (no-op) metrics.
func NewHarvestMetrics(reg *obs.Registry) HarvestMetrics {
	return HarvestMetrics{
		Polls:       reg.Counter("harvest.polls"),
		PollErrors:  reg.Counter("harvest.poll_errors"),
		Reports:     reg.Counter("harvest.reports"),
		FramesOut:   reg.Counter("harvest.frames_out"),
		FramesIn:    reg.Counter("harvest.frames_in"),
		BatchFrames: reg.Counter("harvest.batch_frames"),
		BatchBytes:  reg.Counter("harvest.batch_bytes"),
		PollDur:     reg.Histogram("harvest.poll_us", obs.DurationBuckets),
	}
}

// AgentMetrics counts the device side: connection attempts, retries,
// backoff waits, and queue pressure. Shareable across a fleet of
// agents like HarvestMetrics.
type AgentMetrics struct {
	// Dials counts connection attempts; Retries the sessions that ended
	// in error and triggered backoff.
	Dials, Retries *obs.Counter
	// BackoffWaits counts backoff sleeps; BackoffUS accumulates the
	// total time slept, microseconds.
	BackoffWaits, BackoffUS *obs.Counter
	// Enqueued counts reports queued for upload; Dropped the ones lost
	// to queue overflow.
	Enqueued, Dropped *obs.Counter
	// BatchesSent counts v2 batch frames shipped. BatchSizeFlushes
	// counts batches closed because the next report would have burst the
	// size budget; BatchAgeFlushes counts batches where queue age
	// overrode that budget to drain a backlog (the adaptive batcher's
	// two flush signals). WireFallbacks counts sessions downgraded to
	// wire v1 after a v2 hello was rejected.
	BatchesSent, BatchSizeFlushes, BatchAgeFlushes, WireFallbacks *obs.Counter
}

// NewAgentMetrics registers the agent counters ("agent.*") on reg. A
// nil registry yields all-nil (no-op) metrics.
func NewAgentMetrics(reg *obs.Registry) AgentMetrics {
	return AgentMetrics{
		Dials:            reg.Counter("agent.dials"),
		Retries:          reg.Counter("agent.retries"),
		BackoffWaits:     reg.Counter("agent.backoff_waits"),
		BackoffUS:        reg.Counter("agent.backoff_us"),
		Enqueued:         reg.Counter("agent.enqueued"),
		Dropped:          reg.Counter("agent.dropped"),
		BatchesSent:      reg.Counter("agent.batches_sent"),
		BatchSizeFlushes: reg.Counter("agent.batch_size_flushes"),
		BatchAgeFlushes:  reg.Counter("agent.batch_age_flushes"),
		WireFallbacks:    reg.Counter("agent.wire_fallbacks"),
	}
}

// RegisterHealth folds a HarvestHealth counter block into reg as func
// gauges ("harvest.reconnects", "harvest.mac_failures",
// "harvest.corrupt_frames", "harvest.timeouts", "harvest.queue_drops"),
// read from a fresh snapshot at query time. This keeps HarvestHealth's
// error-classification logic (and its existing Snapshot/String API for
// the status query) as the single source of truth while making the
// same numbers queryable alongside every other metric.
func RegisterHealth(reg *obs.Registry, h *HarvestHealth) {
	if reg == nil || h == nil {
		return
	}
	reg.RegisterFunc("harvest.reconnects", func() int64 { return int64(h.Snapshot().Reconnects) })
	reg.RegisterFunc("harvest.mac_failures", func() int64 { return int64(h.Snapshot().MACFailures) })
	reg.RegisterFunc("harvest.corrupt_frames", func() int64 { return int64(h.Snapshot().CorruptFrames) })
	reg.RegisterFunc("harvest.timeouts", func() int64 { return int64(h.Snapshot().Timeouts) })
	reg.RegisterFunc("harvest.queue_drops", func() int64 { return int64(h.Snapshot().QueueDrops) })
	reg.RegisterFunc("harvest.wal_failures", func() int64 { return int64(h.Snapshot().WALFailures) })
	// harvest.errors is the combined hard-error total the health rule
	// engine's harvest-degradation rule watches: one series instead of
	// three keeps the rule (and its hysteresis) judging the sum, not
	// whichever component happened to spike.
	reg.RegisterFunc("harvest.errors", func() int64 {
		s := h.Snapshot()
		return int64(s.MACFailures + s.CorruptFrames + s.Timeouts)
	})
	reg.RegisterFunc("harvest.degraded", func() int64 {
		if h.Snapshot().Degraded {
			return 1
		}
		return 0
	})
}
