package telemetry

import (
	"bytes"
	"hash/crc32"
	"testing"
)

// savedQueue returns a valid queue snapshot for an agent holding n
// reports.
func savedQueue(t *testing.T, serial string, n int) []byte {
	t.Helper()
	a := NewAgent(serial, testKey)
	for i := 0; i < n; i++ {
		a.Enqueue(&Report{Serial: serial, Timestamp: uint64(i)})
	}
	var buf bytes.Buffer
	if err := a.SaveQueue(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// loadCorrupt runs LoadQueue over a damaged snapshot and asserts the
// contract: no error, empty queue, and wantLost added to Dropped.
func loadCorrupt(t *testing.T, name string, snap []byte, wantLost int) {
	t.Helper()
	a := NewAgent("Q2XX-CRPT", testKey)
	a.Enqueue(&Report{Serial: a.Serial}) // pre-existing queue must be replaced, not kept
	if err := a.LoadQueue(bytes.NewReader(snap)); err != nil {
		t.Fatalf("%s: corrupt snapshot errored the agent out: %v", name, err)
	}
	if a.QueueLen() != 0 {
		t.Errorf("%s: queue = %d after corrupt restore, want empty", name, a.QueueLen())
	}
	if a.Dropped() != wantLost {
		t.Errorf("%s: dropped = %d, want %d", name, a.Dropped(), wantLost)
	}
	// The agent keeps working: enqueue succeeds and seq keeps moving.
	a.Enqueue(&Report{Serial: a.Serial})
	if a.QueueLen() != 1 {
		t.Errorf("%s: agent unusable after corrupt restore", name)
	}
}

func TestLoadQueueCorruption(t *testing.T) {
	const n = 7
	valid := savedQueue(t, "Q2XX-CRPT", n)

	t.Run("empty file", func(t *testing.T) {
		loadCorrupt(t, "empty", nil, 0) // header unreadable: loss size unknown
	})
	t.Run("short header", func(t *testing.T) {
		loadCorrupt(t, "short header", valid[:queueHeaderSize-3], 0)
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := bytes.Clone(valid)
		bad[0] = 'X'
		loadCorrupt(t, "bad magic", bad, 0) // header untrusted once magic fails
	})
	t.Run("truncated payload", func(t *testing.T) {
		loadCorrupt(t, "truncated", valid[:len(valid)-4], n)
	})
	t.Run("bit flip", func(t *testing.T) {
		bad := bytes.Clone(valid)
		bad[queueHeaderSize+len(bad)/2] ^= 0x40
		loadCorrupt(t, "bit flip", bad, n)
	})
	t.Run("crc header flip", func(t *testing.T) {
		bad := bytes.Clone(valid)
		bad[queueHeaderSize-1] ^= 0x01 // stored CRC itself damaged
		loadCorrupt(t, "crc flip", bad, n)
	})
	t.Run("garbage after header", func(t *testing.T) {
		bad := append(bytes.Clone(valid[:queueHeaderSize]), []byte("flash sector noise")...)
		loadCorrupt(t, "garbage payload", bad, n)
	})

	// And the valid snapshot still restores — the hardening did not
	// break the happy path.
	a := NewAgent("Q2XX-CRPT", testKey)
	if err := a.LoadQueue(bytes.NewReader(valid)); err != nil {
		t.Fatal(err)
	}
	if a.QueueLen() != n {
		t.Fatalf("valid restore queue = %d, want %d", a.QueueLen(), n)
	}
}

// TestLoadQueueCorruptBeyondFlip: flipping a payload byte such that
// the gob still has the right CRC is impossible from outside, but a
// snapshot written by a buggy tool could carry a matching CRC over an
// undecodable payload. Forge one and confirm it lands in the same
// start-empty path.
func TestLoadQueueUndecodablePayloadValidCRC(t *testing.T) {
	payload := []byte("crc-valid but not gob")
	hdr := make([]byte, queueHeaderSize)
	copy(hdr, queueMagic[:])
	hdr[8], hdr[9], hdr[10], hdr[11] = 0, 0, 0, 3 // claims 3 reports
	crc := crc32.Checksum(payload, queueCRCTable)
	hdr[12] = byte(crc >> 24)
	hdr[13] = byte(crc >> 16)
	hdr[14] = byte(crc >> 8)
	hdr[15] = byte(crc)
	loadCorrupt(t, "forged", append(hdr, payload...), 3)
}
