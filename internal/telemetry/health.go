package telemetry

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"

	"wlanscale/internal/telemetry/pbwire"
)

// HarvestHealth is the counter block for a harvest endpoint: how often
// the path degraded and how it recovered. One instance can be shared by
// any number of agents and pollers (it is safe for concurrent use);
// merakid surfaces its snapshot in the "status" query.
type HarvestHealth struct {
	mu            sync.Mutex
	reconnects    int
	macFailures   int
	corruptFrames int
	timeouts      int
	walFailures   int
	degraded      bool
	queueDrops    map[string]int
}

// HealthSnapshot is a point-in-time copy of the counters.
type HealthSnapshot struct {
	// Reconnects counts sessions re-established after a failure.
	Reconnects int
	// MACFailures counts frames rejected by HMAC verification.
	MACFailures int
	// CorruptFrames counts frames dropped to framing or decode errors
	// other than MAC failure (oversized length, truncation, malformed
	// report batches).
	CorruptFrames int
	// Timeouts counts frame ops abandoned at the I/O deadline.
	Timeouts int
	// QueueDrops is the fleet-wide total of device-reported queue
	// overflow drops (latest cumulative value per serial, summed).
	QueueDrops int
	// WALFailures counts write-ahead-log appends the durable backend
	// could not complete; Degraded is set while the backend refuses to
	// ack because its disk write path is down (see backend.DurableStore).
	WALFailures int
	Degraded    bool
}

// String renders the snapshot as the status line merakid prints.
func (s HealthSnapshot) String() string {
	return fmt.Sprintf("reconnects=%d mac_failures=%d corrupt_frames=%d timeouts=%d queue_drops=%d wal_failures=%d degraded=%t",
		s.Reconnects, s.MACFailures, s.CorruptFrames, s.Timeouts, s.QueueDrops, s.WALFailures, s.Degraded)
}

// AddReconnect records one re-established session.
func (h *HarvestHealth) AddReconnect() {
	h.mu.Lock()
	h.reconnects++
	h.mu.Unlock()
}

// AddWALFailure records one failed write-ahead-log append.
func (h *HarvestHealth) AddWALFailure() {
	h.mu.Lock()
	h.walFailures++
	h.mu.Unlock()
}

// SetDegraded flips the degraded read-only flag the durable backend
// raises when its disk write path fails.
func (h *HarvestHealth) SetDegraded(v bool) {
	h.mu.Lock()
	h.degraded = v
	h.mu.Unlock()
}

// SetQueueDrops records a device's latest cumulative overflow-drop
// count, as piggybacked on its report frames.
func (h *HarvestHealth) SetQueueDrops(serial string, n int) {
	h.mu.Lock()
	if h.queueDrops == nil {
		h.queueDrops = make(map[string]int)
	}
	if n > h.queueDrops[serial] {
		h.queueDrops[serial] = n
	}
	h.mu.Unlock()
}

// Observe classifies a harvest-path error into the counter block.
// Ordinary connection teardown (EOF, closed connections) is not
// counted: it shows up as a reconnect instead.
func (h *HarvestHealth) Observe(err error) {
	if err == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var ne net.Error
	switch {
	case errors.Is(err, ErrBadMAC):
		h.macFailures++
	case errors.Is(err, os.ErrDeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()):
		h.timeouts++
	case errors.Is(err, ErrFrameTooBig), errors.Is(err, ErrBadFrameType),
		errors.Is(err, ErrNotHello), errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, pbwire.ErrTruncated), errors.Is(err, pbwire.ErrOverflow),
		errors.Is(err, pbwire.ErrBadWireType):
		h.corruptFrames++
	}
}

// Snapshot copies the current counters.
func (h *HarvestHealth) Snapshot() HealthSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HealthSnapshot{
		Reconnects:    h.reconnects,
		MACFailures:   h.macFailures,
		CorruptFrames: h.corruptFrames,
		Timeouts:      h.timeouts,
		WALFailures:   h.walFailures,
		Degraded:      h.degraded,
	}
	for _, n := range h.queueDrops {
		s.QueueDrops += n
	}
	return s
}
