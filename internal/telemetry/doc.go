// Package telemetry implements the reporting path between access points
// and the backend (paper Section 2): a protobuf wire-format report
// schema, an encrypted length-framed tunnel over TCP, an AP-side agent
// that queues reports while disconnected, and the backend's pull-based
// poller. A typical report stream averages around one kilobit per
// second per access point, which TestReportOverhead verifies.
package telemetry
