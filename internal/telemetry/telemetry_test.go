package telemetry

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"wlanscale/internal/dot11"
)

var testKey = bytes.Repeat([]byte{0x42}, 32)

func sampleReport() *Report {
	return &Report{
		Serial:    "Q2XX-ABCD-1234",
		MAC:       dot11.MAC{0x00, 0x18, 0x0a, 1, 2, 3},
		Timestamp: 86400,
		Radios: []RadioStats{
			{Band: dot11.Band24, Channel: 6, WidthMHz: 20, CycleUS: 1e6, RxClearUS: 250000, Rx11US: 200000, TxUS: 10000},
			{Band: dot11.Band5, Channel: 36, WidthMHz: 40, CycleUS: 1e6, RxClearUS: 50000, Rx11US: 45000},
		},
		Clients: []ClientRecord{
			{
				MAC:              dot11.MAC{0xac, 0xbc, 0x32, 9, 9, 9},
				Band:             dot11.Band5,
				RSSIdB:           31,
				Caps:             dot11.Capabilities{AC: true, Streams: 2}.Normalize(),
				UserAgents:       []string{"Mozilla/5.0 (iPhone...)"},
				DHCPFingerprints: [][]byte{{1, 121, 3, 6, 15, 119, 252}},
				Apps: []AppUsageRecord{
					{App: "Netflix", UpBytes: 21000, DownBytes: 1200000000, Flows: 3},
					{App: "Miscellaneous web", UpBytes: 5000, DownBytes: 90000, Flows: 12},
				},
			},
		},
		Neighbors: []NeighborRecord{
			{BSSID: dot11.MAC{2, 0, 0, 0, 0, 1}, SSID: "Verizon-MiFi", Band: dot11.Band24, Channel: 1, RSSIdB: 12, Vendor: "Novatel Wireless"},
		},
		LinkWindows: []LinkWindow{
			{Peer: dot11.MAC{0x00, 0x18, 0x0a, 4, 5, 6}, Band: dot11.Band24, Sent: 20, Delivered: 13},
		},
		ScanSamples: []ScanSample{
			{Band: dot11.Band24, Channel: 6, BusyPermille: 253, DecodablePermille: 201},
		},
		Crashes: []CrashRecord{
			{Timestamp: 3600, Kind: 0, Firmware: "r24.7", PC: 0x80401a2c, FreeKB: 112, NeighborCount: 3150},
		},
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	got, err := UnmarshalReport(r.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalReport: %v", err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestReportRoundTripEmpty(t *testing.T) {
	r := &Report{}
	got, err := UnmarshalReport(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Errorf("empty report mismatch: %+v", got)
	}
}

func TestReportFuzzNoPanic(t *testing.T) {
	err := quick.Check(func(b []byte) bool {
		_, _ = UnmarshalReport(b)
		return true
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Error(err)
	}
}

func TestReportOverhead(t *testing.T) {
	// Section 2: "A typical access point averages around 1 kilobit per
	// second to report to the backend." Reports go out roughly once a
	// minute; a typical report must therefore stay under ~8 KB
	// (60 s * 1 kb/s = 7.5 KB).
	size := len(sampleReport().Marshal())
	if size > 4096 {
		t.Errorf("typical report = %d bytes; too heavy for the 1 kb/s budget", size)
	}
	if size < 50 {
		t.Errorf("report suspiciously small: %d bytes", size)
	}
}

func TestTunnelRoundTrip(t *testing.T) {
	c1, c2 := net.Pipe()
	ta, err := NewTunnel(c1, testKey)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTunnel(c2, testKey)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	defer tb.Close()

	msg := []byte("periodic statistics report payload")
	errc := make(chan error, 1)
	go func() { errc <- ta.WriteFrame(msg) }()
	got, err := tb.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("payload = %q", got)
	}
}

func TestTunnelEncryptsOnWire(t *testing.T) {
	// Capture the wire bytes and check the payload is not visible.
	c1, c2 := net.Pipe()
	tun, _ := NewTunnel(c1, testKey)
	payload := []byte("SECRET-CLIENT-MAC-TABLE")
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 4096)
		n, _ := c2.Read(buf)
		done <- buf[:n]
	}()
	if err := tun.WriteFrame(payload); err != nil {
		t.Fatal(err)
	}
	wire := <-done
	if bytes.Contains(wire, payload) {
		t.Error("payload visible in cleartext on the wire")
	}
	c1.Close()
	c2.Close()
}

func TestTunnelRejectsTamperedFrame(t *testing.T) {
	c1, c2 := net.Pipe()
	ta, _ := NewTunnel(c1, testKey)
	tb, _ := NewTunnel(c2, testKey)
	defer ta.Close()
	defer tb.Close()

	// Relay one frame through a tampering middlebox.
	raw := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 4096)
		n, _ := c2.Read(buf)
		raw <- buf[:n]
	}()
	if err := ta.WriteFrame([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	frame := <-raw
	frame[10] ^= 0xff // flip a ciphertext bit

	c3, c4 := net.Pipe()
	tc, _ := NewTunnel(c4, testKey)
	go c3.Write(frame)
	if _, err := tc.ReadFrame(); err != ErrBadMAC {
		t.Errorf("tampered frame err = %v, want ErrBadMAC", err)
	}
	c3.Close()
	c4.Close()
}

func TestTunnelRejectsWrongKey(t *testing.T) {
	c1, c2 := net.Pipe()
	ta, _ := NewTunnel(c1, testKey)
	otherKey := bytes.Repeat([]byte{0x43}, 32)
	tb, _ := NewTunnel(c2, otherKey)
	defer ta.Close()
	defer tb.Close()
	go ta.WriteFrame([]byte("hi"))
	if _, err := tb.ReadFrame(); err != ErrBadMAC {
		t.Errorf("wrong-key err = %v", err)
	}
}

func TestTunnelKeyLength(t *testing.T) {
	c1, _ := net.Pipe()
	if _, err := NewTunnel(c1, []byte("short")); err != ErrShortKey {
		t.Errorf("short key err = %v", err)
	}
	c1.Close()
}

func TestMessageEncodeDecode(t *testing.T) {
	for _, m := range []*Message{
		{Type: frameHello, Serial: "Q2XX-1"},
		{Type: framePoll, Max: 100},
		{Type: frameAck, Count: 7},
		{Type: frameReports, Reports: [][]byte{{1, 2}, {3}}},
		{Type: frameReports}, // empty batch
	} {
		got, err := DecodeMessage(EncodeMessage(m))
		if err != nil {
			t.Fatalf("decode %d: %v", m.Type, err)
		}
		if got.Type != m.Type || got.Serial != m.Serial || got.Max != m.Max || got.Count != m.Count {
			t.Errorf("message mismatch: %+v vs %+v", got, m)
		}
		if len(got.Reports) != len(m.Reports) {
			t.Errorf("reports = %d, want %d", len(got.Reports), len(m.Reports))
		}
	}
}

func TestMessageDecodeErrors(t *testing.T) {
	if _, err := DecodeMessage(nil); err == nil {
		t.Error("empty message accepted")
	}
	if _, err := DecodeMessage([]byte{99}); err != ErrBadFrameType {
		t.Errorf("unknown type err = %v", err)
	}
	if _, err := DecodeMessage([]byte{framePoll, 0}); err == nil {
		t.Error("short poll accepted")
	}
	if _, err := DecodeMessage([]byte{frameReports, 0, 0, 0, 9, 1}); err == nil {
		t.Error("truncated report batch accepted")
	}
}

func TestAgentQueueAndDrop(t *testing.T) {
	a := NewAgent("Q2XX-1", testKey)
	a.QueueLimit = 3
	for i := 0; i < 5; i++ {
		a.Enqueue(&Report{Serial: "Q2XX-1", Timestamp: uint64(i)})
	}
	if a.QueueLen() != 3 {
		t.Errorf("queue = %d, want 3", a.QueueLen())
	}
	if a.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", a.Dropped())
	}
	// Remaining reports are the newest, with monotonically increasing
	// sequence numbers.
	batch := a.peek(10)
	first, err := UnmarshalReport(batch[0])
	if err != nil {
		t.Fatal(err)
	}
	if first.Timestamp != 2 || first.SeqNo != 3 {
		t.Errorf("oldest surviving report = ts %d seq %d", first.Timestamp, first.SeqNo)
	}
}

func TestEndToEndHarvest(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	agent := NewAgent("Q2XX-E2E", testKey)
	for i := 0; i < 25; i++ {
		r := sampleReport()
		r.Timestamp = uint64(i)
		agent.Enqueue(r)
	}
	go agent.RunWithReconnect(ln.Addr().String(), nil)

	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	p, err := AcceptPoller(conn, testKey)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Serial != "Q2XX-E2E" {
		t.Errorf("serial = %q", p.Serial)
	}

	var all []*Report
	for len(all) < 25 {
		batch, err := p.Poll(10)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			break
		}
		all = append(all, batch...)
	}
	if len(all) != 25 {
		t.Fatalf("harvested %d reports, want 25", len(all))
	}
	for i, r := range all {
		if r.Timestamp != uint64(i) {
			t.Fatalf("report %d has ts %d; order lost", i, r.Timestamp)
		}
		if len(r.Clients) != 1 || r.Clients[0].Apps[0].App != "Netflix" {
			t.Fatalf("report %d content corrupted", i)
		}
	}
	// Queue drained after acks.
	deadline := time.Now().Add(2 * time.Second)
	for agent.QueueLen() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if agent.QueueLen() != 0 {
		t.Errorf("agent queue = %d after acks", agent.QueueLen())
	}
}

func TestHarvestSurvivesReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	agent := NewAgent("Q2XX-RC", testKey)
	for i := 0; i < 10; i++ {
		agent.Enqueue(&Report{Serial: "Q2XX-RC", Timestamp: uint64(i)})
	}
	stop := make(chan struct{})
	defer close(stop)
	go agent.RunWithReconnect(ln.Addr().String(), stop)

	// First session: poll 4, then kill the connection WITHOUT acking
	// beyond what was received.
	conn, _ := ln.Accept()
	p, err := AcceptPoller(conn, testKey)
	if err != nil {
		t.Fatal(err)
	}
	first, err := p.Poll(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 4 {
		t.Fatalf("first poll = %d", len(first))
	}
	p.Close()

	// Device reconnects; the remaining 6 must still arrive.
	conn2, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := AcceptPoller(conn2, testKey)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	rest, err := p2.Poll(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 6 {
		t.Fatalf("after reconnect = %d reports, want 6", len(rest))
	}
	if rest[0].Timestamp != 4 {
		t.Errorf("first remaining ts = %d, want 4", rest[0].Timestamp)
	}
}

func BenchmarkReportMarshal(b *testing.B) {
	r := sampleReport()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Marshal()
	}
}

func BenchmarkReportUnmarshal(b *testing.B) {
	raw := sampleReport().Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalReport(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTunnelWriteFrame(b *testing.B) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	tun, _ := NewTunnel(c1, testKey)
	payload := sampleReport().Marshal()
	go func() {
		buf := make([]byte, 65536)
		for {
			if _, err := c2.Read(buf); err != nil {
				return
			}
		}
	}()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tun.WriteFrame(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTunnelOversizedLengthPrefix(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	tun, _ := NewTunnel(c2, testKey)
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint32(hdr, uint32(MaxFrameBytes+49))
	go c1.Write(hdr)
	if _, err := tun.ReadFrame(); err != ErrFrameTooBig {
		t.Errorf("oversized frame err = %v, want ErrFrameTooBig", err)
	}
}

func TestTunnelTruncatedFrameCleanError(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	tun, _ := NewTunnel(c2, testKey)
	tun.SetTimeout(2 * time.Second)
	go func() {
		// Header promises 100 bytes; deliver 10 and hang up mid-frame.
		hdr := make([]byte, 4)
		binary.BigEndian.PutUint32(hdr, 100)
		c1.Write(hdr)
		c1.Write(make([]byte, 10))
		c1.Close()
	}()
	start := time.Now()
	if _, err := tun.ReadFrame(); err == nil {
		t.Error("truncated frame accepted")
	}
	if time.Since(start) > 3*time.Second {
		t.Error("truncated frame read did not fail promptly")
	}
}

func TestTunnelStalledPeerTimesOut(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	tun, _ := NewTunnel(c2, testKey)
	tun.SetTimeout(100 * time.Millisecond)

	// Read side: peer never sends.
	start := time.Now()
	_, err := tun.ReadFrame()
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("stalled read err = %v, want timeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("stalled read overran its timeout")
	}

	// Write side: peer never reads (net.Pipe writes are synchronous).
	start = time.Now()
	err = tun.WriteFrame([]byte("queued report"))
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("stalled write err = %v, want timeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("stalled write overran its timeout")
	}
}

func TestDecodeMessageMalformedReportsBatches(t *testing.T) {
	cases := [][]byte{
		{frameReports},                   // missing dropped counter
		{frameReports, 0, 0},             // short dropped counter
		{frameReports, 0, 0, 0, 0, 0, 0}, // short length prefix
		{frameReports, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 1, 2, 3}, // huge report length
	}
	for i, b := range cases {
		if _, err := DecodeMessage(b); err == nil {
			t.Errorf("case %d: malformed batch accepted", i)
		}
	}
	// Dropped counter round-trips.
	m, err := DecodeMessage(EncodeMessage(&Message{Type: frameReports, Dropped: 77, Reports: [][]byte{{9}}}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Dropped != 77 || len(m.Reports) != 1 {
		t.Errorf("dropped=%d reports=%d, want 77 and 1", m.Dropped, len(m.Reports))
	}
}

func TestSaveLoadQueue(t *testing.T) {
	a := NewAgent("Q2XX-SAVE", testKey)
	for i := 0; i < 5; i++ {
		a.Enqueue(&Report{Serial: a.Serial, Timestamp: uint64(i)})
	}
	var buf bytes.Buffer
	if err := a.SaveQueue(&buf); err != nil {
		t.Fatal(err)
	}

	// Reboot: a fresh agent restores the queue and the seq counter.
	b := NewAgent("Q2XX-SAVE", testKey)
	if err := b.LoadQueue(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if b.QueueLen() != 5 {
		t.Errorf("restored queue = %d, want 5", b.QueueLen())
	}
	b.Enqueue(&Report{Serial: b.Serial, Timestamp: 5})
	last, err := UnmarshalReport(b.peek(100)[5])
	if err != nil {
		t.Fatal(err)
	}
	if last.SeqNo != 6 {
		t.Errorf("post-restore seq = %d, want 6 (no seqno reuse)", last.SeqNo)
	}

	// A stale snapshot must never rewind a newer seq counter.
	c := NewAgent("Q2XX-SAVE", testKey)
	for i := 0; i < 20; i++ {
		c.Enqueue(&Report{Serial: c.Serial})
	}
	if err := c.LoadQueue(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	c.Enqueue(&Report{Serial: c.Serial})
	fresh, err := UnmarshalReport(c.peek(100)[c.QueueLen()-1])
	if err != nil {
		t.Fatal(err)
	}
	if fresh.SeqNo != 21 {
		t.Errorf("seq after stale restore = %d, want 21", fresh.SeqNo)
	}

	// A snapshot from another device is rejected.
	other := NewAgent("Q2XX-OTHER", testKey)
	if err := other.LoadQueue(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("foreign queue snapshot accepted")
	}
}

func TestReconnectJitterDeterministic(t *testing.T) {
	j1, j2 := reconnectJitter("Q2XX-A"), reconnectJitter("Q2XX-A")
	for i := 0; i < 8; i++ {
		if j1.Float64() != j2.Float64() {
			t.Fatal("same serial produced different jitter streams")
		}
	}
	ja, jb := reconnectJitter("Q2XX-A"), reconnectJitter("Q2XX-B")
	same := true
	for i := 0; i < 8; i++ {
		if ja.Float64() != jb.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different serials produced identical jitter streams")
	}
}

func TestAcceptPollerHandshakeTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Slow-loris: connect and send nothing.
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = AcceptPollerWithTimeout(conn, testKey, 100*time.Millisecond)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("silent client handshake err = %v, want timeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("handshake hung past its deadline")
	}
}

func TestMultiHomeFailover(t *testing.T) {
	// Primary is down (listener closed immediately); secondary answers.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	live, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()

	agent := NewAgent("Q2XX-MH", testKey)
	agent.BackoffBase = 5 * time.Millisecond
	agent.Health = &HarvestHealth{}
	for i := 0; i < 5; i++ {
		agent.Enqueue(&Report{Serial: agent.Serial, Timestamp: uint64(i)})
	}
	stop := make(chan struct{})
	defer close(stop)
	go agent.RunMultiHome(deadAddr, live.Addr().String(), stop)

	conn, err := live.Accept()
	if err != nil {
		t.Fatal(err)
	}
	p, err := AcceptPollerWithTimeout(conn, testKey, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	got, err := p.Poll(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("failover harvested %d reports, want 5", len(got))
	}
}

func TestHarvestHealthClassification(t *testing.T) {
	h := &HarvestHealth{}
	h.Observe(ErrBadMAC)
	h.Observe(fmt.Errorf("wrapped: %w", ErrBadMAC))
	h.Observe(ErrFrameTooBig)
	h.Observe(os.ErrDeadlineExceeded)
	h.Observe(io.EOF) // ordinary teardown: uncounted
	h.Observe(nil)
	h.AddReconnect()
	h.SetQueueDrops("A", 3)
	h.SetQueueDrops("A", 7) // cumulative: max wins
	h.SetQueueDrops("A", 5)
	h.SetQueueDrops("B", 2)
	s := h.Snapshot()
	want := HealthSnapshot{Reconnects: 1, MACFailures: 2, CorruptFrames: 1, Timeouts: 1, QueueDrops: 9}
	if s != want {
		t.Errorf("snapshot = %+v, want %+v", s, want)
	}
	if s.String() == "" {
		t.Error("empty health string")
	}
}
