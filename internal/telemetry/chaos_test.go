// Chaos suite: drives a multi-agent harvest fleet through scripted
// outages, corruption bursts, hard resets, stalls, and AP reboots from
// one faultnet seed, then asserts the backend store converged to
// exactly-once ingestion — every report either ingested once or counted
// in Agent.Dropped(), duplicates absorbed by (serial, seqno) dedup,
// no goroutine left hanging. This is the paper's operating regime:
// devices queue locally through tunnel loss, dual-home across two
// datacenters, and catch up after crash/reboot storms (Sections 2, 6).
package telemetry_test

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"wlanscale/internal/anomaly"
	"wlanscale/internal/backend"
	"wlanscale/internal/dot11"
	"wlanscale/internal/faultnet"
	"wlanscale/internal/telemetry"
)

var chaosKey = bytes.Repeat([]byte{0x42}, 32)

const chaosTimeout = 500 * time.Millisecond

// chaosReport builds a report with exactly one radio sample, so the
// store's per-serial radio series length equals its unique-ingest count
// and any double-count would be visible in the aggregate.
func chaosReport(serial string, i int) *telemetry.Report {
	return &telemetry.Report{
		Serial:    serial,
		Timestamp: uint64(i),
		Radios: []telemetry.RadioStats{{
			Band: dot11.Band24, Channel: 1 + i%11, WidthMHz: 20,
			CycleUS: 1e6, RxClearUS: 100000, Rx11US: 80000, TxUS: 5000,
		}},
	}
}

func chaosAgent(serial string, health *telemetry.HarvestHealth) *telemetry.Agent {
	a := telemetry.NewAgent(serial, chaosKey)
	a.Timeout = chaosTimeout
	a.BackoffBase = 10 * time.Millisecond
	a.BackoffMax = 250 * time.Millisecond
	a.Health = health
	return a
}

// serveBackend runs one datacenter: accept tunnels, poll each device,
// ingest into the shared store. Sessions die on any error (the agent
// reconnects and redelivers); the loop survives every fault.
func serveBackend(wg *sync.WaitGroup, ln net.Listener, store *backend.Store, health *telemetry.HarvestHealth) {
	defer wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := telemetry.AcceptPollerWithTimeout(conn, chaosKey, chaosTimeout)
			if err != nil {
				conn.Close()
				return
			}
			defer p.Close()
			p.Health = health
			for {
				reports, err := p.Poll(32)
				if err != nil {
					return
				}
				for _, r := range reports {
					store.Ingest(r)
				}
				if len(reports) == 0 {
					time.Sleep(5 * time.Millisecond)
				}
			}
		}()
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// tsSet returns the set of radio-sample timestamps stored for a serial.
func tsSet(store *backend.Store, serial string) map[uint64]int {
	out := make(map[uint64]int)
	for _, s := range store.RadioSeries(serial) {
		out[s.Timestamp]++
	}
	return out
}

func TestChaosConvergesToExactlyOnce(t *testing.T) {
	store := backend.NewStore()
	health := &telemetry.HarvestHealth{}
	var wg sync.WaitGroup

	// Two datacenters behind one seeded fault plan each. Windows index
	// accepted connections, so every fault sequence replays from the
	// seeds: the primary starts clean, goes through an outage, then a
	// corruption burst, then resets and a stall; the secondary is down
	// at first and corrupts a burst of its own. Both run clean once the
	// windows pass, so the fleet always converges.
	lnP, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	primary := faultnet.Wrap(lnP, faultnet.Plan{
		Seed:        0xC0FFEE,
		Refuse:      []faultnet.Window{{From: 2, To: 4}},
		Corrupt:     []faultnet.Window{{From: 4, To: 12}},
		CorruptProb: 0.6,
		Reset:       []faultnet.Window{{From: 12, To: 14}},
		Stall:       []faultnet.Window{{From: 14, To: 15}},
		Latency:     100 * time.Microsecond,
	})
	lnS, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	secondary := faultnet.Wrap(lnS, faultnet.Plan{
		Seed:        0xBEEF,
		Refuse:      []faultnet.Window{{From: 0, To: 2}},
		Corrupt:     []faultnet.Window{{From: 2, To: 6}},
		CorruptProb: 0.5,
	})
	addrP, addrS := lnP.Addr().String(), lnS.Addr().String()
	wg.Add(2)
	go serveBackend(&wg, primary, store, health)
	go serveBackend(&wg, secondary, store, health)

	stop := make(chan struct{})
	runAgent := func(a *telemetry.Agent, st <-chan struct{}) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.RunMultiHome(addrP, addrS, st)
		}()
	}

	// AP-0: steady reporter riding out every fault window.
	a0 := chaosAgent("AP-0", health)
	for i := 0; i < 40; i++ {
		a0.Enqueue(chaosReport("AP-0", i))
	}
	runAgent(a0, stop)

	// AP-3: flash-budget overflow before it ever connects — 48 reports
	// into a 16-slot queue. The 32 oldest are the declared losses; the
	// drop count must surface at the backend via the report frames.
	a3 := chaosAgent("AP-3", health)
	a3.QueueLimit = 16
	for i := 0; i < 48; i++ {
		a3.Enqueue(chaosReport("AP-3", i))
	}
	if d := a3.Dropped(); d != 32 {
		t.Fatalf("AP-3 dropped = %d, want 32", d)
	}
	runAgent(a3, stop)

	// AP-1: reboot from a STALE flash snapshot. The queue is persisted
	// before any harvest; the device then delivers (and gets acks for)
	// part of it, crashes, and restores the stale snapshot — so it
	// re-delivers reports the store already ingested. Dedup must absorb
	// them (dedup hits > 0) without double-counting aggregates, and the
	// restored seq counter must keep post-reboot reports collision-free.
	a1 := chaosAgent("AP-1", health)
	for i := 0; i < 10; i++ {
		a1.Enqueue(chaosReport("AP-1", i))
	}
	var flash1 bytes.Buffer
	if err := a1.SaveQueue(&flash1); err != nil {
		t.Fatal(err)
	}
	stop1 := make(chan struct{})
	runAgent(a1, stop1)
	waitFor(t, "AP-1 pre-crash ingests", func() bool {
		return len(store.RadioSeries("AP-1")) >= 3
	})
	close(stop1) // crash: in-memory queue and in-flight acks are gone

	a1b := chaosAgent("AP-1", health)
	if err := a1b.LoadQueue(bytes.NewReader(flash1.Bytes())); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		a1b.Enqueue(chaosReport("AP-1", i))
	}
	runAgent(a1b, stop)

	// AP-2: the paper's skyscraper OOM reboot. The neighbor table blows
	// its budget, the device reboots, persists its queue on the way
	// down, and the first post-reboot report carries the crash record.
	a2 := chaosAgent("AP-2", health)
	for i := 0; i < 15; i++ {
		a2.Enqueue(chaosReport("AP-2", i))
	}
	stop2 := make(chan struct{})
	runAgent(a2, stop2)
	waitFor(t, "AP-2 pre-crash ingests", func() bool {
		return len(store.RadioSeries("AP-2")) >= 5
	})

	table := anomaly.NewNeighborTable(1) // 1 KB budget OOMs fast
	var crash anomaly.CrashReport
	for bssid := uint64(1); ; bssid++ {
		if err := table.Observe(bssid); err != nil {
			crash = table.OOMCrash("AP-2", 15, "r24.7", 0x80401a2c)
			break
		}
	}
	close(stop2)
	var flash2 bytes.Buffer
	if err := a2.SaveQueue(&flash2); err != nil {
		t.Fatal(err)
	}
	a2b := chaosAgent("AP-2", health)
	if err := a2b.LoadQueue(bytes.NewReader(flash2.Bytes())); err != nil {
		t.Fatal(err)
	}
	r := chaosReport("AP-2", 15)
	r.Crashes = []telemetry.CrashRecord{crash.ToTelemetry()}
	a2b.Enqueue(r)
	for i := 16; i < 30; i++ {
		a2b.Enqueue(chaosReport("AP-2", i))
	}
	runAgent(a2b, stop)

	// Convergence: every surviving report ingested, every queue empty.
	want := map[string]int{"AP-0": 40, "AP-1": 20, "AP-2": 30, "AP-3": 16}
	waitFor(t, "store convergence", func() bool {
		for serial, n := range want {
			if len(store.RadioSeries(serial)) != n {
				return false
			}
		}
		return a0.QueueLen() == 0 && a1b.QueueLen() == 0 &&
			a2b.QueueLen() == 0 && a3.QueueLen() == 0
	})

	// Exactly-once: each expected timestamp stored exactly one time.
	first := map[string]int{"AP-0": 0, "AP-1": 0, "AP-2": 0, "AP-3": 32}
	for serial, n := range want {
		got := tsSet(store, serial)
		for i := first[serial]; i < first[serial]+n; i++ {
			if got[uint64(i)] != 1 {
				t.Errorf("%s ts %d stored %d times, want exactly 1", serial, i, got[uint64(i)])
			}
		}
	}
	ingests, dupes := store.Stats()
	if wantTotal := 40 + 20 + 30 + 16; ingests != wantTotal {
		t.Errorf("unique ingests = %d, want %d", ingests, wantTotal)
	}
	if dupes == 0 {
		t.Error("no dedup hits: the stale-snapshot reboot should have re-delivered acked reports")
	}
	if crashes := store.Crashes("AP-2"); len(crashes) != 1 || anomaly.CrashKind(crashes[0].Kind) != anomaly.CrashOOM {
		t.Errorf("AP-2 crashes = %+v, want exactly one OOM record", crashes)
	}

	// Health counters saw the chaos: sessions were re-established and
	// the overflow drops were declared to the backend.
	snap := health.Snapshot()
	if snap.Reconnects == 0 {
		t.Error("health recorded no reconnects under outages and resets")
	}
	if snap.QueueDrops != 32 {
		t.Errorf("health queue drops = %d, want 32", snap.QueueDrops)
	}
	if total, refused := primary.Accepted(); refused == 0 {
		t.Errorf("primary outage window never refused (accepted %d)", total)
	}

	close(stop)
	primary.Close()
	secondary.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("fleet goroutines did not shut down: a harvest path is hanging")
	}
}
