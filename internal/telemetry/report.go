package telemetry

import (
	"fmt"

	"wlanscale/internal/dot11"
	"wlanscale/internal/telemetry/pbwire"
)

// Report is one device's periodic statistics upload.
type Report struct {
	// Serial is the device serial number.
	Serial string
	// MAC is the device's base MAC address.
	MAC dot11.MAC
	// Timestamp is virtual seconds since the epoch start.
	Timestamp uint64
	// SeqNo orders reports from one device.
	SeqNo uint64
	// TraceID is the report's end-to-end trace ID (see
	// internal/obs/trace); zero means untraced. Encoded as an optional
	// field, it is omitted from the wire when zero so untraced reports
	// are byte-identical to the pre-tracing schema, and old readers skip
	// it as an unknown field.
	TraceID uint64

	Radios      []RadioStats
	Clients     []ClientRecord
	Neighbors   []NeighborRecord
	LinkWindows []LinkWindow
	ScanSamples []ScanSample
	Crashes     []CrashRecord
}

// CrashRecord is a post-mortem uploaded after a reboot — the firmware
// and program-counter state of paper Section 6.1.
type CrashRecord struct {
	// Timestamp is when the crash occurred (virtual seconds).
	Timestamp uint64
	// Kind is a small enum (0 = OOM, 1 = panic, 2 = watchdog),
	// mirroring anomaly.CrashKind.
	Kind uint8
	// Firmware is the firmware revision string.
	Firmware string
	// PC is the faulting program counter.
	PC uint64
	// FreeKB is free memory at the fault.
	FreeKB uint32
	// NeighborCount is the neighbor-table size at the fault.
	NeighborCount uint32
}

// RadioStats is one radio's counter snapshot.
type RadioStats struct {
	Band      dot11.Band
	Channel   int
	WidthMHz  int
	CycleUS   uint64
	RxClearUS uint64
	Rx11US    uint64
	TxUS      uint64
}

// ClientRecord is one associated client's usage snapshot.
type ClientRecord struct {
	MAC              dot11.MAC
	Band             dot11.Band
	RSSIdB           int32 // signal above noise floor, dB
	Caps             dot11.Capabilities
	UserAgents       []string
	DHCPFingerprints [][]byte
	Apps             []AppUsageRecord
}

// AppUsageRecord is one (client, application) byte counter pair.
type AppUsageRecord struct {
	App       string
	UpBytes   uint64
	DownBytes uint64
	Flows     uint32
}

// NeighborRecord is one overheard BSS.
type NeighborRecord struct {
	BSSID   dot11.BSSID
	SSID    string
	Band    dot11.Band
	Channel int
	RSSIdB  int32
	Vendor  string
}

// LinkWindow is one mesh-probe window measurement toward a peer AP.
type LinkWindow struct {
	Peer      dot11.MAC
	Band      dot11.Band
	Sent      uint32
	Delivered uint32
}

// ScanSample is one scanning-radio channel observation, in permille to
// keep the varint encoding compact.
type ScanSample struct {
	Band              dot11.Band
	Channel           int
	BusyPermille      uint32
	DecodablePermille uint32
}

// Field numbers for the Report message.
const (
	fSerial = 1
	fMAC    = 2
	fTime   = 3
	fSeq    = 4
	fRadio  = 5
	fClient = 6
	fNeigh  = 7
	fLink   = 8
	fScan   = 9
	fCrash  = 10
	fTrace  = 11
)

// Marshal encodes the report.
func (r *Report) Marshal() []byte {
	var e pbwire.Encoder
	e.String(fSerial, r.Serial)
	e.Uint64(fMAC, r.MAC.Uint64())
	e.Uint64(fTime, r.Timestamp)
	e.Uint64(fSeq, r.SeqNo)
	e.Uint64(fTrace, r.TraceID)
	var sub pbwire.Encoder
	for _, rs := range r.Radios {
		sub.Reset()
		sub.Uint64(1, uint64(rs.Band))
		sub.Uint64(2, uint64(rs.Channel))
		sub.Uint64(3, uint64(rs.WidthMHz))
		sub.Uint64(4, rs.CycleUS)
		sub.Uint64(5, rs.RxClearUS)
		sub.Uint64(6, rs.Rx11US)
		sub.Uint64(7, rs.TxUS)
		e.Message(fRadio, &sub)
	}
	for _, c := range r.Clients {
		e.Message(fClient, c.encode())
	}
	for _, n := range r.Neighbors {
		sub.Reset()
		sub.Uint64(1, n.BSSID.Uint64())
		sub.String(2, n.SSID)
		sub.Uint64(3, uint64(n.Band))
		sub.Uint64(4, uint64(n.Channel))
		sub.Int64(5, int64(n.RSSIdB))
		sub.String(6, n.Vendor)
		e.Message(fNeigh, &sub)
	}
	for _, l := range r.LinkWindows {
		sub.Reset()
		sub.Uint64(1, l.Peer.Uint64())
		sub.Uint64(2, uint64(l.Band))
		sub.Uint64(3, uint64(l.Sent))
		sub.Uint64(4, uint64(l.Delivered))
		e.Message(fLink, &sub)
	}
	for _, s := range r.ScanSamples {
		sub.Reset()
		sub.Uint64(1, uint64(s.Band))
		sub.Uint64(2, uint64(s.Channel))
		sub.Uint64(3, uint64(s.BusyPermille))
		sub.Uint64(4, uint64(s.DecodablePermille))
		e.Message(fScan, &sub)
	}
	for _, c := range r.Crashes {
		sub.Reset()
		sub.Uint64(1, c.Timestamp)
		sub.Uint64(2, uint64(c.Kind))
		sub.String(3, c.Firmware)
		sub.Uint64(4, c.PC)
		sub.Uint64(5, uint64(c.FreeKB))
		sub.Uint64(6, uint64(c.NeighborCount))
		e.Message(fCrash, &sub)
	}
	return e.Bytes()
}

func (c *ClientRecord) encode() *pbwire.Encoder {
	var e pbwire.Encoder
	e.Uint64(1, c.MAC.Uint64())
	e.Uint64(2, uint64(c.Band))
	e.Int64(3, int64(c.RSSIdB))
	caps := c.Caps.Marshal()
	e.BytesField(4, caps[:])
	for _, ua := range c.UserAgents {
		e.String(5, ua)
	}
	for _, fp := range c.DHCPFingerprints {
		e.BytesField(6, fp)
	}
	var sub pbwire.Encoder
	for _, a := range c.Apps {
		sub.Reset()
		sub.String(1, a.App)
		sub.Uint64(2, a.UpBytes)
		sub.Uint64(3, a.DownBytes)
		sub.Uint64(4, uint64(a.Flows))
		e.Message(7, &sub)
	}
	return &e
}

// UnmarshalReport decodes a report, skipping unknown fields so old
// readers accept new senders.
func UnmarshalReport(b []byte) (*Report, error) {
	r := &Report{}
	d := pbwire.NewDecoder(b)
	for !d.Done() {
		f, wt, err := d.Field()
		if err != nil {
			return nil, fmt.Errorf("telemetry: report header: %w", err)
		}
		switch f {
		case fSerial:
			if r.Serial, err = d.String(); err != nil {
				return nil, err
			}
		case fMAC:
			v, err := d.Uint64()
			if err != nil {
				return nil, err
			}
			r.MAC = dot11.MACFromPacked(v)
		case fTime:
			if r.Timestamp, err = d.Uint64(); err != nil {
				return nil, err
			}
		case fSeq:
			if r.SeqNo, err = d.Uint64(); err != nil {
				return nil, err
			}
		case fTrace:
			if r.TraceID, err = d.Uint64(); err != nil {
				return nil, err
			}
		case fRadio:
			nb, err := d.Bytes()
			if err != nil {
				return nil, err
			}
			rs, err := decodeRadio(nb)
			if err != nil {
				return nil, err
			}
			r.Radios = append(r.Radios, rs)
		case fClient:
			nb, err := d.Bytes()
			if err != nil {
				return nil, err
			}
			c, err := decodeClient(nb)
			if err != nil {
				return nil, err
			}
			r.Clients = append(r.Clients, c)
		case fNeigh:
			nb, err := d.Bytes()
			if err != nil {
				return nil, err
			}
			n, err := decodeNeighbor(nb)
			if err != nil {
				return nil, err
			}
			r.Neighbors = append(r.Neighbors, n)
		case fLink:
			nb, err := d.Bytes()
			if err != nil {
				return nil, err
			}
			l, err := decodeLink(nb)
			if err != nil {
				return nil, err
			}
			r.LinkWindows = append(r.LinkWindows, l)
		case fScan:
			nb, err := d.Bytes()
			if err != nil {
				return nil, err
			}
			s, err := decodeScan(nb)
			if err != nil {
				return nil, err
			}
			r.ScanSamples = append(r.ScanSamples, s)
		case fCrash:
			nb, err := d.Bytes()
			if err != nil {
				return nil, err
			}
			c, err := decodeCrash(nb)
			if err != nil {
				return nil, err
			}
			r.Crashes = append(r.Crashes, c)
		default:
			if err := d.Skip(wt); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

func decodeRadio(b []byte) (RadioStats, error) {
	var rs RadioStats
	d := pbwire.NewDecoder(b)
	for !d.Done() {
		f, wt, err := d.Field()
		if err != nil {
			return rs, err
		}
		var v uint64
		switch f {
		case 1, 2, 3, 4, 5, 6, 7:
			if v, err = d.Uint64(); err != nil {
				return rs, err
			}
		default:
			if err := d.Skip(wt); err != nil {
				return rs, err
			}
			continue
		}
		switch f {
		case 1:
			rs.Band = dot11.Band(v)
		case 2:
			rs.Channel = int(v)
		case 3:
			rs.WidthMHz = int(v)
		case 4:
			rs.CycleUS = v
		case 5:
			rs.RxClearUS = v
		case 6:
			rs.Rx11US = v
		case 7:
			rs.TxUS = v
		}
	}
	return rs, nil
}

func decodeClient(b []byte) (ClientRecord, error) {
	var c ClientRecord
	d := pbwire.NewDecoder(b)
	for !d.Done() {
		f, wt, err := d.Field()
		if err != nil {
			return c, err
		}
		switch f {
		case 1:
			v, err := d.Uint64()
			if err != nil {
				return c, err
			}
			c.MAC = dot11.MACFromPacked(v)
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return c, err
			}
			c.Band = dot11.Band(v)
		case 3:
			v, err := d.Int64()
			if err != nil {
				return c, err
			}
			c.RSSIdB = int32(v)
		case 4:
			nb, err := d.Bytes()
			if err != nil {
				return c, err
			}
			if len(nb) == 2 {
				c.Caps = dot11.UnmarshalCapabilities([2]byte{nb[0], nb[1]})
			}
		case 5:
			s, err := d.String()
			if err != nil {
				return c, err
			}
			c.UserAgents = append(c.UserAgents, s)
		case 6:
			nb, err := d.Bytes()
			if err != nil {
				return c, err
			}
			fp := make([]byte, len(nb))
			copy(fp, nb)
			c.DHCPFingerprints = append(c.DHCPFingerprints, fp)
		case 7:
			nb, err := d.Bytes()
			if err != nil {
				return c, err
			}
			a, err := decodeAppUsage(nb)
			if err != nil {
				return c, err
			}
			c.Apps = append(c.Apps, a)
		default:
			if err := d.Skip(wt); err != nil {
				return c, err
			}
		}
	}
	return c, nil
}

func decodeAppUsage(b []byte) (AppUsageRecord, error) {
	var a AppUsageRecord
	d := pbwire.NewDecoder(b)
	for !d.Done() {
		f, wt, err := d.Field()
		if err != nil {
			return a, err
		}
		switch f {
		case 1:
			if a.App, err = d.String(); err != nil {
				return a, err
			}
		case 2:
			if a.UpBytes, err = d.Uint64(); err != nil {
				return a, err
			}
		case 3:
			if a.DownBytes, err = d.Uint64(); err != nil {
				return a, err
			}
		case 4:
			v, err := d.Uint64()
			if err != nil {
				return a, err
			}
			a.Flows = uint32(v)
		default:
			if err := d.Skip(wt); err != nil {
				return a, err
			}
		}
	}
	return a, nil
}

func decodeNeighbor(b []byte) (NeighborRecord, error) {
	var n NeighborRecord
	d := pbwire.NewDecoder(b)
	for !d.Done() {
		f, wt, err := d.Field()
		if err != nil {
			return n, err
		}
		switch f {
		case 1:
			v, err := d.Uint64()
			if err != nil {
				return n, err
			}
			n.BSSID = dot11.MACFromPacked(v)
		case 2:
			if n.SSID, err = d.String(); err != nil {
				return n, err
			}
		case 3:
			v, err := d.Uint64()
			if err != nil {
				return n, err
			}
			n.Band = dot11.Band(v)
		case 4:
			v, err := d.Uint64()
			if err != nil {
				return n, err
			}
			n.Channel = int(v)
		case 5:
			v, err := d.Int64()
			if err != nil {
				return n, err
			}
			n.RSSIdB = int32(v)
		case 6:
			if n.Vendor, err = d.String(); err != nil {
				return n, err
			}
		default:
			if err := d.Skip(wt); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

func decodeLink(b []byte) (LinkWindow, error) {
	var l LinkWindow
	d := pbwire.NewDecoder(b)
	for !d.Done() {
		f, wt, err := d.Field()
		if err != nil {
			return l, err
		}
		var v uint64
		switch f {
		case 1, 2, 3, 4:
			if v, err = d.Uint64(); err != nil {
				return l, err
			}
		default:
			if err := d.Skip(wt); err != nil {
				return l, err
			}
			continue
		}
		switch f {
		case 1:
			l.Peer = dot11.MACFromPacked(v)
		case 2:
			l.Band = dot11.Band(v)
		case 3:
			l.Sent = uint32(v)
		case 4:
			l.Delivered = uint32(v)
		}
	}
	return l, nil
}

func decodeScan(b []byte) (ScanSample, error) {
	var s ScanSample
	d := pbwire.NewDecoder(b)
	for !d.Done() {
		f, wt, err := d.Field()
		if err != nil {
			return s, err
		}
		var v uint64
		switch f {
		case 1, 2, 3, 4:
			if v, err = d.Uint64(); err != nil {
				return s, err
			}
		default:
			if err := d.Skip(wt); err != nil {
				return s, err
			}
			continue
		}
		switch f {
		case 1:
			s.Band = dot11.Band(v)
		case 2:
			s.Channel = int(v)
		case 3:
			s.BusyPermille = uint32(v)
		case 4:
			s.DecodablePermille = uint32(v)
		}
	}
	return s, nil
}

func decodeCrash(b []byte) (CrashRecord, error) {
	var c CrashRecord
	d := pbwire.NewDecoder(b)
	for !d.Done() {
		f, wt, err := d.Field()
		if err != nil {
			return c, err
		}
		switch f {
		case 1:
			if c.Timestamp, err = d.Uint64(); err != nil {
				return c, err
			}
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return c, err
			}
			c.Kind = uint8(v)
		case 3:
			if c.Firmware, err = d.String(); err != nil {
				return c, err
			}
		case 4:
			if c.PC, err = d.Uint64(); err != nil {
				return c, err
			}
		case 5:
			v, err := d.Uint64()
			if err != nil {
				return c, err
			}
			c.FreeKB = uint32(v)
		case 6:
			v, err := d.Uint64()
			if err != nil {
				return c, err
			}
			c.NeighborCount = uint32(v)
		default:
			if err := d.Skip(wt); err != nil {
				return c, err
			}
		}
	}
	return c, nil
}
