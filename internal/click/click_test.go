package click

import (
	"strings"
	"sync"
	"testing"

	"wlanscale/internal/apps"
	"wlanscale/internal/dot11"
)

func TestCounterCounts(t *testing.T) {
	c := NewCounter("test")
	c.Push(&Packet{Length: 100})
	c.Push(&Packet{Length: 50})
	if c.Packets() != 2 || c.Bytes() != 150 {
		t.Errorf("counter = %d pkts %d bytes", c.Packets(), c.Bytes())
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter("conc")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Push(&Packet{Length: 1})
			}
		}()
	}
	wg.Wait()
	if c.Packets() != 8000 || c.Bytes() != 8000 {
		t.Errorf("concurrent counter = %d/%d", c.Packets(), c.Bytes())
	}
}

func TestChainOrder(t *testing.T) {
	var order []string
	mk := func(name string) Element {
		return Func{Label: name, Fn: func(*Packet) { order = append(order, name) }}
	}
	ch := NewChain("main", mk("a"), mk("b"), mk("c"))
	ch.Push(&Packet{})
	if strings.Join(order, "") != "abc" {
		t.Errorf("order = %v", order)
	}
	if !strings.Contains(ch.String(), "a -> b -> c") {
		t.Errorf("String = %q", ch.String())
	}
	if ch.Name() != "main" {
		t.Errorf("Name = %q", ch.Name())
	}
}

func TestPathSwitch(t *testing.T) {
	fast := NewCounter("fast")
	slow := NewCounter("slow")
	s := &PathSwitch{Fast: fast, Slow: slow}
	s.Push(&Packet{Length: 10})
	s.Push(&Packet{Length: 20, Meta: &apps.FlowMeta{}})
	if fast.Packets() != 1 || slow.Packets() != 1 {
		t.Errorf("switch routed fast=%d slow=%d", fast.Packets(), slow.Packets())
	}
	if s.Name() != "path-switch" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestPathSwitchNilBranches(t *testing.T) {
	s := &PathSwitch{}
	// Must not panic with nil branches.
	s.Push(&Packet{})
	s.Push(&Packet{Meta: &apps.FlowMeta{}})
}

func TestFilter(t *testing.T) {
	kept := NewCounter("kept")
	f := &Filter{
		Label: "big-only",
		Keep:  func(p *Packet) bool { return p.Length > 100 },
		Next:  kept,
	}
	f.Push(&Packet{Length: 50})
	f.Push(&Packet{Length: 500})
	if kept.Packets() != 1 {
		t.Errorf("filter kept %d", kept.Packets())
	}
	if f.Name() != "big-only" {
		t.Errorf("Name = %q", f.Name())
	}
	anon := &Filter{Keep: func(*Packet) bool { return true }}
	if anon.Name() != "filter" {
		t.Errorf("anon Name = %q", anon.Name())
	}
	anon.Push(&Packet{}) // nil Next must not panic
}

func TestFuncName(t *testing.T) {
	f := Func{Fn: func(*Packet) {}}
	if f.Name() != "func" {
		t.Errorf("Name = %q", f.Name())
	}
}

func TestPacketFields(t *testing.T) {
	p := &Packet{
		Client:   dot11.MAC{1, 2, 3, 4, 5, 6},
		FlowID:   42,
		Upstream: true,
		Length:   1500,
	}
	if p.Client.String() != "01:02:03:04:05:06" || p.FlowID != 42 {
		t.Errorf("packet = %+v", p)
	}
}
