// Package click is a minimal Click-modular-router-style element pipeline
// (Kohler et al.), mirroring how the Meraki access points structure their
// data path (paper Section 2.1): a fast path that only counts and
// forwards, and a slow path that runs protocol inspection on the small
// set of interesting packets (DNS, TCP SYN/FIN, HTTP headers, SSL
// handshakes). Elements are composed into a graph with push semantics.
package click

import (
	"fmt"
	"strings"
	"sync/atomic"

	"wlanscale/internal/apps"
	"wlanscale/internal/dot11"
)

// Packet is the unit the pipeline pushes. In the simulation a Packet can
// represent either a single slow-path packet carrying metadata, or a
// fast-path aggregate of Length bytes belonging to one flow.
type Packet struct {
	// Client is the client MAC the packet belongs to.
	Client dot11.MAC
	// FlowID identifies the flow within the client.
	FlowID uint64
	// Upstream is true for client-to-network packets.
	Upstream bool
	// Length is the payload byte count this packet accounts for.
	Length int
	// Meta carries the slow-path artifacts (non-nil only for packets
	// the filter diverts to the slow path).
	Meta *apps.FlowMeta
}

// Element is a pipeline stage.
type Element interface {
	// Name identifies the element in pipeline dumps.
	Name() string
	// Push processes one packet and forwards it as the element sees
	// fit.
	Push(p *Packet)
}

// Chain connects elements in sequence: each element's Push is invoked in
// order with the same packet.
type Chain struct {
	name     string
	elements []Element
}

// NewChain builds a named chain of elements.
func NewChain(name string, elements ...Element) *Chain {
	return &Chain{name: name, elements: elements}
}

// Name implements Element.
func (c *Chain) Name() string { return c.name }

// Push implements Element.
func (c *Chain) Push(p *Packet) {
	for _, e := range c.elements {
		e.Push(p)
	}
}

// String renders the chain topology.
func (c *Chain) String() string {
	names := make([]string, len(c.elements))
	for i, e := range c.elements {
		names[i] = e.Name()
	}
	return fmt.Sprintf("%s -> [%s]", c.name, strings.Join(names, " -> "))
}

// Counter counts packets and bytes passing through; safe for concurrent
// push.
type Counter struct {
	name    string
	packets atomic.Uint64
	bytes   atomic.Uint64
}

// NewCounter creates a named counter element.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Name implements Element.
func (c *Counter) Name() string { return c.name }

// Push implements Element.
func (c *Counter) Push(p *Packet) {
	c.packets.Add(1)
	c.bytes.Add(uint64(p.Length))
}

// Packets returns the packet count.
func (c *Counter) Packets() uint64 { return c.packets.Load() }

// Bytes returns the byte count.
func (c *Counter) Bytes() uint64 { return c.bytes.Load() }

// PathSwitch diverts slow-path packets (those carrying Meta) to the slow
// element and everything else to the fast element — the fast/slow split
// of Section 2.1.
type PathSwitch struct {
	Fast Element
	Slow Element
}

// Name implements Element.
func (s *PathSwitch) Name() string { return "path-switch" }

// Push implements Element.
func (s *PathSwitch) Push(p *Packet) {
	if p.Meta != nil {
		if s.Slow != nil {
			s.Slow.Push(p)
		}
		return
	}
	if s.Fast != nil {
		s.Fast.Push(p)
	}
}

// Func adapts a function to the Element interface.
type Func struct {
	Label string
	Fn    func(*Packet)
}

// Name implements Element.
func (f Func) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return "func"
}

// Push implements Element.
func (f Func) Push(p *Packet) { f.Fn(p) }

// Filter forwards a packet to Next only when Keep returns true.
type Filter struct {
	Label string
	Keep  func(*Packet) bool
	Next  Element
}

// Name implements Element.
func (f *Filter) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return "filter"
}

// Push implements Element.
func (f *Filter) Push(p *Packet) {
	if f.Keep(p) && f.Next != nil {
		f.Next.Push(p)
	}
}
