package radio

import (
	"math"
	"strings"
	"testing"
	"time"

	"wlanscale/internal/airtime"
	"wlanscale/internal/dot11"
	"wlanscale/internal/rng"
)

func testChannel(t *testing.T, band dot11.Band, n int) dot11.Channel {
	t.Helper()
	ch, ok := dot11.ChannelByNumber(band, n)
	if !ok {
		t.Fatalf("channel %d missing", n)
	}
	return ch
}

func TestConfigEIRP(t *testing.T) {
	// MR16 2.4 GHz: 23 dBm + 3 dBi = 26 dBm EIRP.
	c := Config{Band: dot11.Band24, TxPowerDBm: 23, AntennaGainDBi: 3, Chains: 2}
	if c.EIRPdBm() != 26 {
		t.Errorf("EIRP = %v, want 26", c.EIRPdBm())
	}
}

func TestCountersUtilization(t *testing.T) {
	c := Counters{CycleUS: 1000, RxClearUS: 250, Rx11US: 200}
	if got := c.Utilization(); got != 0.25 {
		t.Errorf("Utilization = %v, want 0.25", got)
	}
	if got := c.DecodableFraction(); got != 0.8 {
		t.Errorf("DecodableFraction = %v, want 0.8", got)
	}
}

func TestCountersZeroSafe(t *testing.T) {
	var c Counters
	if c.Utilization() != 0 || c.DecodableFraction() != 0 {
		t.Error("zero counters should report 0")
	}
}

func TestCountersClamp(t *testing.T) {
	c := Counters{CycleUS: 100, RxClearUS: 150, Rx11US: 200}
	if c.Utilization() != 1 {
		t.Errorf("over-full utilization = %v, want clamp to 1", c.Utilization())
	}
	if c.DecodableFraction() != 1 {
		t.Errorf("over-full decodable = %v, want clamp to 1", c.DecodableFraction())
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{CycleUS: 10, RxClearUS: 5, Rx11US: 3, TxUS: 1}
	a.Add(Counters{CycleUS: 10, RxClearUS: 5, Rx11US: 3, TxUS: 1})
	if a.CycleUS != 20 || a.RxClearUS != 10 || a.Rx11US != 6 || a.TxUS != 2 {
		t.Errorf("Add = %+v", a)
	}
}

func TestCountersString(t *testing.T) {
	c := Counters{CycleUS: 1000, RxClearUS: 100}
	if !strings.Contains(c.String(), "10.0%") {
		t.Errorf("String = %q", c.String())
	}
}

func TestTuneValidation(t *testing.T) {
	r := New(Config{Band: dot11.Band24, TxPowerDBm: 23, AntennaGainDBi: 3}, testChannel(t, dot11.Band24, 1))
	if err := r.Tune(testChannel(t, dot11.Band5, 36), 20); err == nil {
		t.Error("cross-band tune accepted")
	}
	if err := r.Tune(testChannel(t, dot11.Band24, 6), 30); err == nil {
		t.Error("30 MHz width accepted")
	}
	if err := r.Tune(testChannel(t, dot11.Band24, 11), 40); err != nil {
		t.Errorf("valid tune rejected: %v", err)
	}
	if r.Channel.Number != 11 || r.WidthMHz != 40 {
		t.Errorf("tune did not apply: %+v", r.Channel)
	}
}

func TestMeasureAccumulatesCounters(t *testing.T) {
	ch := testChannel(t, dot11.Band24, 6)
	r := New(Config{Band: dot11.Band24, TxPowerDBm: 23, AntennaGainDBi: 3}, ch)
	n := airtime.NewNeighborhood()
	n.Add(airtime.NewBeaconSource(ch, -60, 4, 1)) // ~10% duty

	obs := r.Measure(n, 12, time.Second, 0)
	c := r.Counters()
	if c.CycleUS != 1000000 {
		t.Errorf("CycleUS = %d", c.CycleUS)
	}
	if math.Abs(c.Utilization()-obs.Busy) > 0.001 {
		t.Errorf("counter util %v != observation %v", c.Utilization(), obs.Busy)
	}
	if c.DecodableFraction() < 0.99 {
		t.Errorf("beacon-only decodable = %v, want ~1", c.DecodableFraction())
	}
}

func TestMeasureOwnTx(t *testing.T) {
	ch := testChannel(t, dot11.Band24, 1)
	r := New(Config{Band: dot11.Band24}, ch)
	n := airtime.NewNeighborhood() // silent neighborhood
	obs := r.Measure(n, 12, time.Second, 0.3)
	if math.Abs(obs.Busy-0.3) > 0.001 {
		t.Errorf("own-TX busy = %v, want 0.3", obs.Busy)
	}
	c := r.Counters()
	if c.TxUS != 300000 {
		t.Errorf("TxUS = %d", c.TxUS)
	}
	if c.DecodableFraction() < 0.99 {
		t.Errorf("own TX should be decodable; got %v", c.DecodableFraction())
	}
}

func TestMeasureOwnTxClamped(t *testing.T) {
	ch := testChannel(t, dot11.Band24, 1)
	r := New(Config{Band: dot11.Band24}, ch)
	n := airtime.NewNeighborhood()
	obs := r.Measure(n, 12, time.Second, 1.7)
	if obs.Busy != 1 {
		t.Errorf("clamped busy = %v", obs.Busy)
	}
	obs = r.Measure(n, 12, time.Second, -2)
	if obs.Busy != 0 {
		t.Errorf("negative own duty busy = %v", obs.Busy)
	}
}

func TestResetCounters(t *testing.T) {
	ch := testChannel(t, dot11.Band24, 1)
	r := New(Config{Band: dot11.Band24}, ch)
	r.Measure(airtime.NewNeighborhood(), 12, time.Second, 0.5)
	pre := r.ResetCounters()
	if pre.CycleUS == 0 {
		t.Error("pre-reset counters empty")
	}
	if r.Counters() != (Counters{}) {
		t.Error("counters not cleared")
	}
}

func TestSweepCoversBothBands(t *testing.T) {
	n := airtime.NewNeighborhood()
	samples := Sweep(n, 12)
	want := len(dot11.Channels(dot11.Band24)) + len(dot11.Channels(dot11.Band5))
	if len(samples) != want {
		t.Fatalf("sweep samples = %d, want %d", len(samples), want)
	}
	seen24, seen5 := false, false
	for _, s := range samples {
		switch s.Channel.Band {
		case dot11.Band24:
			seen24 = true
		case dot11.Band5:
			seen5 = true
		}
	}
	if !seen24 || !seen5 {
		t.Error("sweep missing a band")
	}
}

func TestSweepSeesBusyChannel(t *testing.T) {
	root := rng.New(1)
	ch6 := testChannel(t, dot11.Band24, 6)
	n := airtime.NewNeighborhood()
	n.Add(airtime.NewBeaconSource(ch6, -55, 10, 1))
	_ = root
	samples := Sweep(n, 12)
	var busy6, busy36 float64
	for _, s := range samples {
		if s.Channel.Band == dot11.Band24 && s.Channel.Number == 6 {
			busy6 = s.Busy
		}
		if s.Channel.Band == dot11.Band5 && s.Channel.Number == 36 {
			busy36 = s.Busy
		}
	}
	if busy6 <= 0.1 {
		t.Errorf("busy channel 6 = %v", busy6)
	}
	if busy36 != 0 {
		t.Errorf("idle channel 36 = %v", busy36)
	}
}

func TestSweepAveragedReducesVariance(t *testing.T) {
	root := rng.New(2)
	ch6 := testChannel(t, dot11.Band24, 6)
	mk := func(label string) *airtime.Neighborhood {
		n := airtime.NewNeighborhood()
		for i := 0; i < 5; i++ {
			n.Add(airtime.NewDataSource(ch6, 20, -55, root.Split(label).SplitN("d", i)))
		}
		return n
	}
	varOf := func(k int, label string) float64 {
		n := mk(label)
		var vals []float64
		for i := 0; i < 60; i++ {
			s := SweepAveraged(n, 13, k)
			for _, cs := range s {
				if cs.Channel.Band == dot11.Band24 && cs.Channel.Number == 6 {
					vals = append(vals, cs.Busy)
				}
			}
		}
		var m, m2 float64
		for _, v := range vals {
			m += v
		}
		m /= float64(len(vals))
		for _, v := range vals {
			m2 += (v - m) * (v - m)
		}
		return m2 / float64(len(vals))
	}
	v1 := varOf(1, "a")
	v36 := varOf(36, "a")
	if v36 >= v1 {
		t.Errorf("averaging did not reduce variance: v1=%g v36=%g", v1, v36)
	}
}

func TestScanDwell(t *testing.T) {
	if ScanDwell != 5*time.Millisecond {
		t.Errorf("ScanDwell = %v, want 5 ms (Section 5)", ScanDwell)
	}
}

func BenchmarkSweep(b *testing.B) {
	root := rng.New(3)
	n := airtime.NewNeighborhood()
	for _, chNum := range []int{1, 6, 11} {
		ch, _ := dot11.ChannelByNumber(dot11.Band24, chNum)
		for i := 0; i < 15; i++ {
			n.Add(airtime.NewDataSource(ch, 20, -60, root.SplitN("d", chNum*100+i)))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sweep(n, 13)
	}
}
