// Package radio models the 802.11 radio front-end of a Meraki access
// point: transmit power and antenna gain per Table 1, the Atheros-style
// microsecond MIB counters (cycle, rx-clear, rx-802.11, tx) from which
// the paper derives channel utilization and the decodable-traffic split
// (Figures 6 and 10), and the MR18's dedicated scanning radio that
// dwells 5 ms per channel across both bands (Section 5).
package radio

import (
	"fmt"
	"time"

	"wlanscale/internal/airtime"
	"wlanscale/internal/dot11"
)

// Config describes one radio chain-set of an access point.
type Config struct {
	// Band the radio serves.
	Band dot11.Band
	// TxPowerDBm is the conducted transmit power.
	TxPowerDBm float64
	// AntennaGainDBi is the antenna gain.
	AntennaGainDBi float64
	// Chains is the number of TX/RX chains (2x2 = 2).
	Chains int
	// ScanOnly marks a radio that never serves clients (the MR18's
	// third radio).
	ScanOnly bool
}

// EIRPdBm returns the effective isotropic radiated power.
func (c Config) EIRPdBm() float64 { return c.TxPowerDBm + c.AntennaGainDBi }

// Counters is the microsecond counter block the driver exposes. The
// paper's utilization metric is RxClear/Cycle over a scan interval; the
// decodable split of Figure 10 is Rx11/RxClear.
type Counters struct {
	// CycleUS counts elapsed microseconds.
	CycleUS uint64
	// RxClearUS counts microseconds the energy-detect mechanism held
	// carrier sense busy (any energy, decodable or not, plus own TX).
	RxClearUS uint64
	// Rx11US counts microseconds spent receiving energy with an intact
	// 802.11 PLCP preamble and header.
	Rx11US uint64
	// TxUS counts microseconds this radio transmitted.
	TxUS uint64
}

// Add accumulates another counter block.
func (c *Counters) Add(o Counters) {
	c.CycleUS += o.CycleUS
	c.RxClearUS += o.RxClearUS
	c.Rx11US += o.Rx11US
	c.TxUS += o.TxUS
}

// Utilization returns busy time as a fraction of elapsed time.
func (c Counters) Utilization() float64 {
	if c.CycleUS == 0 {
		return 0
	}
	u := float64(c.RxClearUS) / float64(c.CycleUS)
	if u > 1 {
		u = 1
	}
	return u
}

// DecodableFraction returns the share of busy time that carried
// decodable 802.11 headers.
func (c Counters) DecodableFraction() float64 {
	if c.RxClearUS == 0 {
		return 0
	}
	f := float64(c.Rx11US) / float64(c.RxClearUS)
	if f > 1 {
		f = 1
	}
	return f
}

// String renders the counters compactly for diagnostics.
func (c Counters) String() string {
	return fmt.Sprintf("cycle=%dus busy=%dus rx11=%dus tx=%dus util=%.1f%%",
		c.CycleUS, c.RxClearUS, c.Rx11US, c.TxUS, c.Utilization()*100)
}

// Radio is one radio front-end with its serving channel and counters.
type Radio struct {
	Config
	// Channel is the current operating channel.
	Channel dot11.Channel
	// WidthMHz is the operating channel width.
	WidthMHz int

	counters Counters
}

// New creates a radio tuned to the given channel at 20 MHz.
func New(cfg Config, ch dot11.Channel) *Radio {
	return &Radio{Config: cfg, Channel: ch, WidthMHz: 20}
}

// Tune retunes the radio. It returns an error if the channel's band does
// not match the radio's.
func (r *Radio) Tune(ch dot11.Channel, widthMHz int) error {
	if ch.Band != r.Band {
		return fmt.Errorf("radio: cannot tune %s radio to %s channel %d", r.Band, ch.Band, ch.Number)
	}
	if widthMHz != 20 && widthMHz != 40 {
		return fmt.Errorf("radio: unsupported width %d MHz", widthMHz)
	}
	r.Channel = ch
	r.WidthMHz = widthMHz
	return nil
}

// Measure runs one measurement window against the neighborhood on the
// radio's serving channel, accumulating counters. ownTxDuty is the
// fraction of the window this radio itself transmitted (beacons plus
// serving its own clients); own transmissions hold carrier busy and are
// decodable 802.11, exactly as the chipset counts them.
func (r *Radio) Measure(n *airtime.Neighborhood, todHours float64, window time.Duration, ownTxDuty float64) airtime.Observation {
	obs := n.Observe(r.Channel, todHours)
	if ownTxDuty < 0 {
		ownTxDuty = 0
	}
	if ownTxDuty > 1 {
		ownTxDuty = 1
	}
	// Own TX occupies air the neighborhood model doesn't know about;
	// union it in.
	busy := 1 - (1-obs.Busy)*(1-ownTxDuty)
	dec := 1 - (1-obs.Decodable)*(1-ownTxDuty)
	us := uint64(window.Microseconds())
	r.counters.Add(Counters{
		CycleUS:   us,
		RxClearUS: uint64(busy * float64(us)),
		Rx11US:    uint64(dec * float64(us)),
		TxUS:      uint64(ownTxDuty * float64(us)),
	})
	obs.Busy = busy
	obs.Decodable = dec
	return obs
}

// Counters returns the accumulated counter block.
func (r *Radio) Counters() Counters { return r.counters }

// ResetCounters clears the counter block (the driver does this when the
// backend harvests) and returns the pre-reset values.
func (r *Radio) ResetCounters() Counters {
	c := r.counters
	r.counters = Counters{}
	return c
}

// ScanDwell is the per-channel dwell time of the MR18 scanning radio.
const ScanDwell = 5 * time.Millisecond

// ChannelSample is one channel's result from a scanning-radio sweep.
type ChannelSample struct {
	Channel dot11.Channel
	// Busy and Decodable are fractions of the dwell.
	Busy      float64
	Decodable float64
}

// Sweep runs the dedicated scanning radio across every channel in both
// bands, dwelling ScanDwell on each, and returns per-channel samples.
// The MR18 backend aggregates these over three-minute periods; callers
// average repeated sweeps for that. Scanning uses energy-detect
// semantics (ObserveED): 5 ms dwells catch energy, not CCA state.
func Sweep(n *airtime.Neighborhood, todHours float64) []ChannelSample {
	var out []ChannelSample
	for _, band := range []dot11.Band{dot11.Band24, dot11.Band5} {
		for _, ch := range dot11.Channels(band) {
			obs := n.ObserveED(ch, todHours)
			out = append(out, ChannelSample{Channel: ch, Busy: obs.Busy, Decodable: obs.Decodable})
		}
	}
	return out
}

// SweepAveraged averages k sweeps, modeling the three-minute aggregation
// window the backend applies to MR18 scan data.
func SweepAveraged(n *airtime.Neighborhood, todHours float64, k int) []ChannelSample {
	if k < 1 {
		k = 1
	}
	acc := Sweep(n, todHours)
	for i := 1; i < k; i++ {
		s := Sweep(n, todHours)
		for j := range acc {
			acc[j].Busy += s[j].Busy
			acc[j].Decodable += s[j].Decodable
		}
	}
	for j := range acc {
		acc[j].Busy /= float64(k)
		acc[j].Decodable /= float64(k)
	}
	return acc
}
