package shaper

import (
	"math"
	"testing"
	"testing/quick"

	"wlanscale/internal/apps"
	"wlanscale/internal/dot11"
)

var (
	macA = dot11.MAC{1, 0, 0, 0, 0, 1}
	macB = dot11.MAC{1, 0, 0, 0, 0, 2}
)

func TestTokenBucketSustainedRate(t *testing.T) {
	b := NewTokenBucket(1000, 1000) // 1 KB/s, 1 KB burst
	var granted float64
	// Demand 10 KB/s for 10 seconds at 10 Hz.
	for i := 0; i < 100; i++ {
		granted += b.Allow(float64(i)*0.1, 1000)
	}
	// Expect ~burst + rate * 10 s = 1 KB + 10 KB.
	if granted < 10000 || granted > 12100 {
		t.Errorf("granted = %.0f bytes, want ~11000", granted)
	}
}

func TestTokenBucketBurst(t *testing.T) {
	b := NewTokenBucket(100, 5000)
	if got := b.Allow(0, 5000); got != 5000 {
		t.Errorf("initial burst = %v", got)
	}
	if got := b.Allow(0, 1000); got != 0 {
		t.Errorf("post-burst grant = %v", got)
	}
	// One second later: 100 tokens refilled.
	if got := b.Allow(1, 1000); math.Abs(got-100) > 1e-9 {
		t.Errorf("refill grant = %v, want 100", got)
	}
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	b := NewTokenBucket(1000, 500)
	b.Allow(0, 0)
	b.Allow(100, 0) // long idle: tokens must cap at burst
	if b.Tokens() > 500 {
		t.Errorf("tokens = %v, exceed burst", b.Tokens())
	}
}

func TestTokenBucketNeverNegative(t *testing.T) {
	err := quick.Check(func(reqs []uint16) bool {
		b := NewTokenBucket(1000, 2000)
		tm := 0.0
		for _, r := range reqs {
			tm += 0.01
			got := b.Allow(tm, float64(r))
			if got < 0 || got > float64(r) || b.Tokens() < -1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestTokenBucketTimeGoingBackward(t *testing.T) {
	b := NewTokenBucket(1000, 1000)
	b.Allow(10, 1000)
	// Time regression (clock skew) must not mint tokens.
	if got := b.Allow(5, 1000); got != 0 {
		t.Errorf("backward-time grant = %v", got)
	}
}

func TestShaperRequiresOneGlobal(t *testing.T) {
	if _, err := New([]Rule{{Category: apps.CatVideoMusic, RateBps: 100}}); err == nil {
		t.Error("no global rule accepted")
	}
	if _, err := New([]Rule{{Global: true, RateBps: 100}, {Global: true, RateBps: 200}}); err == nil {
		t.Error("two global rules accepted")
	}
	if _, err := New([]Rule{{Global: true, RateBps: 0}}); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestShaperCategoryOverride(t *testing.T) {
	s, err := New([]Rule{
		{Global: true, RateBps: 1e6, BurstBytes: 1e6},
		{Category: apps.CatVideoMusic, RateBps: 1000, BurstBytes: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Video is throttled hard; web rides the global bucket.
	video := s.Shape(0, macA, apps.CatVideoMusic, 50000)
	web := s.Shape(0, macA, apps.CatOther, 50000)
	if video != 1000 {
		t.Errorf("video grant = %v, want 1000", video)
	}
	if web != 50000 {
		t.Errorf("web grant = %v, want full", web)
	}
	passed, dropped := s.Stats()
	if passed != 51000 || dropped != 49000 {
		t.Errorf("stats = %v/%v", passed, dropped)
	}
}

func TestShaperPerClientIsolation(t *testing.T) {
	s, err := New([]Rule{{Global: true, RateBps: 1000, BurstBytes: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Shape(0, macA, apps.CatOther, 1000); got != 1000 {
		t.Fatalf("client A grant = %v", got)
	}
	// Client B has its own bucket.
	if got := s.Shape(0, macB, apps.CatOther, 1000); got != 1000 {
		t.Errorf("client B starved by A's bucket: %v", got)
	}
	// A is now empty.
	if got := s.Shape(0, macA, apps.CatOther, 500); got != 0 {
		t.Errorf("client A over-granted: %v", got)
	}
}

func TestShaperImprovesFairness(t *testing.T) {
	// One hog, nine mice: without shaping the hog dominates; with a
	// per-client cap, fairness rises.
	demand := func(mac dot11.MAC, i int) float64 {
		if i == 0 {
			return 1e6 // the hog wants 1 MB per tick
		}
		return 2e4
	}
	run := func(withShaper bool) float64 {
		byClient := make(map[dot11.MAC]float64)
		var s *Shaper
		if withShaper {
			s, _ = New([]Rule{{Global: true, RateBps: 5e4, BurstBytes: 5e4}})
		}
		for tick := 0; tick < 20; tick++ {
			for i := 0; i < 10; i++ {
				mac := dot11.MAC{2, 0, 0, 0, 0, byte(i)}
				d := demand(mac, i)
				if s != nil {
					byClient[mac] += s.Shape(float64(tick), mac, apps.CatOther, d)
				} else {
					byClient[mac] += d
				}
			}
		}
		return FairnessIndex(byClient)
	}
	unshaped := run(false)
	shaped := run(true)
	if shaped <= unshaped {
		t.Errorf("shaping did not improve fairness: %.3f -> %.3f", unshaped, shaped)
	}
	// Under the cap the hog still gets rate*t = 2.5x a mouse's demand,
	// so Jain's index lands near 0.87 rather than 1.
	if shaped < 0.8 {
		t.Errorf("shaped fairness = %.3f, want > 0.8", shaped)
	}
}

func TestFairnessIndexBounds(t *testing.T) {
	if FairnessIndex(nil) != 0 {
		t.Error("empty map fairness != 0")
	}
	even := map[dot11.MAC]float64{macA: 10, macB: 10}
	if f := FairnessIndex(even); math.Abs(f-1) > 1e-9 {
		t.Errorf("even fairness = %v", f)
	}
	skewed := map[dot11.MAC]float64{macA: 100, macB: 0}
	if f := FairnessIndex(skewed); math.Abs(f-0.5) > 1e-9 {
		t.Errorf("one-hog fairness = %v, want 0.5", f)
	}
}

func TestTopTalkers(t *testing.T) {
	byClient := map[dot11.MAC]float64{
		macA: 100,
		macB: 300,
		{9}:  200,
	}
	top := TopTalkers(byClient, 2)
	if len(top) != 2 || top[0] != macB || top[1] != (dot11.MAC{9}) {
		t.Errorf("top = %v", top)
	}
	if got := TopTalkers(byClient, 99); len(got) != 3 {
		t.Errorf("overlong n = %d", len(got))
	}
}

func BenchmarkShape(b *testing.B) {
	s, _ := New([]Rule{
		{Global: true, RateBps: 1e6, BurstBytes: 1e6},
		{Category: apps.CatVideoMusic, RateBps: 1e5, BurstBytes: 1e5},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Shape(float64(i)*0.001, macA, apps.CatVideoMusic, 1500)
	}
}
