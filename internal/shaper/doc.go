// Package shaper implements the paper's first practical implication:
// "traffic shaping at the wireless access point to better serve the
// growing number of bandwidth hungry clients and applications". It
// provides token-bucket rate limiters, per-client shaping with
// application-category overrides (throttle video, leave VoIP alone),
// and fairness accounting across a cell — all in virtual time, so the
// simulator can drive it deterministically.
//
// TokenBucket is the primitive; Shaper composes per-client buckets
// with category Rules. FairnessIndex (Jain's index) and TopTalkers
// quantify what shaping buys: the tests show the heavy-tailed client
// distribution of Table 3 flattening under a per-client cap.
package shaper
