package shaper

import (
	"fmt"
	"sort"

	"wlanscale/internal/apps"
	"wlanscale/internal/dot11"
)

// TokenBucket is a standard token bucket in virtual time.
type TokenBucket struct {
	// RateBps is the sustained rate in bytes per second.
	RateBps float64
	// BurstBytes is the bucket depth.
	BurstBytes float64

	tokens float64
	lastT  float64
	primed bool
}

// NewTokenBucket creates a bucket that starts full.
func NewTokenBucket(rateBps, burstBytes float64) *TokenBucket {
	if burstBytes < 1 {
		burstBytes = 1
	}
	return &TokenBucket{RateBps: rateBps, BurstBytes: burstBytes, tokens: burstBytes}
}

// Allow consumes n bytes at virtual time t (seconds) if the bucket
// permits, returning how many bytes pass (partial grants model the
// shaper queueing/dropping the rest).
func (b *TokenBucket) Allow(t float64, n float64) float64 {
	if !b.primed {
		b.lastT = t
		b.primed = true
	}
	if t > b.lastT {
		b.tokens += (t - b.lastT) * b.RateBps
		if b.tokens > b.BurstBytes {
			b.tokens = b.BurstBytes
		}
		b.lastT = t
	}
	if n <= 0 {
		return 0
	}
	granted := n
	if granted > b.tokens {
		granted = b.tokens
	}
	b.tokens -= granted
	return granted
}

// Tokens returns the current fill level (after the last Allow).
func (b *TokenBucket) Tokens() float64 { return b.tokens }

// Rule is one shaping rule: a per-client rate, optionally scoped to an
// application category.
type Rule struct {
	// Category scopes the rule; CatOther with Global=true applies to
	// everything not matched by a scoped rule.
	Category apps.Category
	// Global marks the default rule.
	Global bool
	// RateBps is the per-client limit for this scope.
	RateBps float64
	// BurstBytes is the bucket depth; defaults to one second of rate.
	BurstBytes float64
}

// Shaper applies per-client, per-scope token buckets — the element a
// Meraki AP inserts into its Click pipeline when an admin sets
// per-client limits.
type Shaper struct {
	rules   []Rule
	buckets map[bucketKey]*TokenBucket

	// Accounting.
	passed, dropped float64
}

type bucketKey struct {
	client dot11.MAC
	scope  int // index into rules
}

// New creates a shaper with the given rules. Exactly one global rule is
// required; scoped rules override it for their category.
func New(rules []Rule) (*Shaper, error) {
	globals := 0
	for i := range rules {
		if rules[i].Global {
			globals++
		}
		if rules[i].RateBps <= 0 {
			return nil, fmt.Errorf("shaper: rule %d has non-positive rate", i)
		}
		if rules[i].BurstBytes <= 0 {
			rules[i].BurstBytes = rules[i].RateBps
		}
	}
	if globals != 1 {
		return nil, fmt.Errorf("shaper: need exactly one global rule, got %d", globals)
	}
	return &Shaper{rules: rules, buckets: make(map[bucketKey]*TokenBucket)}, nil
}

// ruleFor returns the index of the rule governing a category.
func (s *Shaper) ruleFor(cat apps.Category) int {
	global := 0
	for i, r := range s.rules {
		if r.Global {
			global = i
			continue
		}
		if r.Category == cat {
			return i
		}
	}
	return global
}

// Shape passes n bytes of category cat for the client at virtual time
// t, returning the bytes admitted.
func (s *Shaper) Shape(t float64, client dot11.MAC, cat apps.Category, n float64) float64 {
	idx := s.ruleFor(cat)
	key := bucketKey{client: client, scope: idx}
	b, ok := s.buckets[key]
	if !ok {
		r := s.rules[idx]
		b = NewTokenBucket(r.RateBps, r.BurstBytes)
		s.buckets[key] = b
	}
	granted := b.Allow(t, n)
	s.passed += granted
	s.dropped += n - granted
	return granted
}

// Stats returns total admitted and shaped-away bytes.
func (s *Shaper) Stats() (passed, dropped float64) { return s.passed, s.dropped }

// FairnessIndex computes Jain's fairness index over per-client byte
// totals: 1.0 is perfectly fair, 1/n is one client hogging everything.
func FairnessIndex(byClient map[dot11.MAC]float64) float64 {
	if len(byClient) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, v := range byClient {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(byClient)) * sumSq)
}

// TopTalkers returns the n clients with the largest totals, descending
// — "a subset of clients driving most of the usage" (Section 6.2).
func TopTalkers(byClient map[dot11.MAC]float64, n int) []dot11.MAC {
	type kv struct {
		mac dot11.MAC
		v   float64
	}
	rows := make([]kv, 0, len(byClient))
	for m, v := range byClient {
		rows = append(rows, kv{m, v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].v != rows[j].v {
			return rows[i].v > rows[j].v
		}
		return rows[i].mac.Uint64() < rows[j].mac.Uint64()
	})
	if n > len(rows) {
		n = len(rows)
	}
	out := make([]dot11.MAC, n)
	for i := 0; i < n; i++ {
		out[i] = rows[i].mac
	}
	return out
}
