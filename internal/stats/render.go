package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned text tables in the style of the paper's tables.
// Build one with NewTable, append rows, and call String.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with a caption and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a footnote line under the table.
func (t *Table) AddNote(note string) { t.notes = append(t.notes, note) }

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	for _, n := range t.notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderCDFs renders one or more labeled CDFs as an ASCII chart with the
// cumulative fraction on the y axis, matching the visual shape of the
// paper's CDF figures. Width and height are in characters.
func RenderCDFs(title string, width, height int, series map[string]*CDF) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	// Find the global x range.
	lo, hi := 0.0, 0.0
	first := true
	for _, c := range series {
		if c.N() == 0 {
			continue
		}
		cLo, cHi := c.Quantile(0), c.Quantile(1)
		if first {
			lo, hi, first = cLo, cHi, false
		} else {
			if cLo < lo {
				lo = cLo
			}
			if cHi > hi {
				hi = cHi
			}
		}
	}
	if first || hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	markers := []byte{'*', '+', 'o', 'x', '#', '@'}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	// Deterministic ordering for stable output.
	sortStrings(names)
	for si, name := range names {
		c := series[name]
		if c.N() == 0 {
			continue
		}
		m := markers[si%len(markers)]
		for col := 0; col < width; col++ {
			x := lo + (hi-lo)*float64(col)/float64(width-1)
			frac := c.FractionBelow(x)
			row := height - 1 - int(frac*float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = m
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, row := range grid {
		frac := 1 - float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%4.2f |%s|\n", frac, string(row))
	}
	fmt.Fprintf(&b, "     %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(&b, "     %-*.3g%*.3g\n", width/2, lo, width/2+2, hi)
	for si, name := range names {
		fmt.Fprintf(&b, "  %c = %s (n=%d)\n", markers[si%len(markers)], name, series[name].N())
	}
	return b.String()
}

func sortStrings(v []string) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// RenderHistogram renders a horizontal bar chart of the histogram, with
// one row per bin, in the style of the paper's Figure 2.
func RenderHistogram(title string, h *Histogram, labels []string, barWidth int) string {
	if barWidth <= 0 {
		barWidth = 50
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		maxCount = 1
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, c := range h.Counts {
		label := fmt.Sprintf("%.3g", h.BinCenter(i))
		if labels != nil && i < len(labels) {
			label = labels[i]
		}
		bar := strings.Repeat("#", c*barWidth/maxCount)
		fmt.Fprintf(&b, "%8s |%-*s| %d\n", label, barWidth, bar, c)
	}
	return b.String()
}

// RenderSeries renders one or more labeled time series in an ASCII chart,
// matching the visual shape of the paper's Figures 4 and 5. Each series is
// a slice of Y values sampled at uniform X spacing.
func RenderSeries(title string, width, height int, yLo, yHi float64, series map[string][]float64) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	if yHi <= yLo {
		yHi = yLo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	markers := []byte{'*', '+', 'o', 'x'}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sortStrings(names)
	for si, name := range names {
		vals := series[name]
		if len(vals) == 0 {
			continue
		}
		m := markers[si%len(markers)]
		for col := 0; col < width; col++ {
			idx := col * (len(vals) - 1) / max(width-1, 1)
			frac := (vals[idx] - yLo) / (yHi - yLo)
			row := height - 1 - int(frac*float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = m
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, row := range grid {
		v := yHi - (yHi-yLo)*float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%6.2f |%s|\n", v, string(row))
	}
	fmt.Fprintf(&b, "       %s\n", strings.Repeat("-", width+2))
	for si, name := range names {
		fmt.Fprintf(&b, "  %c = %s\n", markers[si%len(markers)], name)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
