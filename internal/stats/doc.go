// Package stats provides the statistical summaries the measurement study
// reports: empirical CDFs and quantiles, histograms, online moments,
// correlation coefficients, and scatter summaries. It also contains text
// renderers that print distributions in the shapes the paper's tables and
// figures use.
package stats
