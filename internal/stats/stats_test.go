package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryMoments(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if math.Abs(s.Stddev()-2) > 1e-9 {
		t.Errorf("Stddev = %v, want 2", s.Stddev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if s.Sum() != 40 {
		t.Errorf("Sum = %v, want 40", s.Sum())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.N() != 0 {
		t.Error("empty summary not zero-valued")
	}
}

func TestSummaryNegativeValues(t *testing.T) {
	var s Summary
	s.Add(-5)
	s.Add(-1)
	if s.Min() != -5 || s.Max() != -1 {
		t.Errorf("Min/Max with negatives = %v/%v", s.Min(), s.Max())
	}
}

func TestCDFQuantiles(t *testing.T) {
	c := FromSamples([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if got := c.Median(); math.Abs(got-5.5) > 1e-9 {
		t.Errorf("Median = %v, want 5.5", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := c.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %v, want 10", got)
	}
	if got := c.Quantile(0.9); math.Abs(got-9.1) > 1e-9 {
		t.Errorf("Quantile(0.9) = %v, want 9.1", got)
	}
}

func TestCDFQuantileMonotone(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		c := FromSamples(append([]float64(nil), raw...))
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := c.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestCDFFractionBelow(t *testing.T) {
	c := FromSamples([]float64{1, 2, 2, 3})
	if got := c.FractionBelow(2); got != 0.75 {
		t.Errorf("FractionBelow(2) = %v, want 0.75 (P(X<=2))", got)
	}
	if got := c.FractionBelow(0.5); got != 0 {
		t.Errorf("FractionBelow(0.5) = %v, want 0", got)
	}
	if got := c.FractionBelow(10); got != 1 {
		t.Errorf("FractionBelow(10) = %v, want 1", got)
	}
	if got := c.FractionAtLeast(2); got != 0.75 {
		t.Errorf("FractionAtLeast(2) = %v, want 0.75", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.Quantile(0.5) != 0 || c.FractionBelow(1) != 0 || c.Mean() != 0 {
		t.Error("empty CDF should return zeros")
	}
	if pts := c.Points(10); pts != nil {
		t.Error("empty CDF Points should be nil")
	}
}

func TestCDFAddThenQuery(t *testing.T) {
	var c CDF
	for i := 10; i >= 1; i-- {
		c.Add(float64(i))
	}
	if c.Median() != 5.5 {
		t.Errorf("Median = %v", c.Median())
	}
	c.Add(100) // re-sort path after a new Add
	if c.Quantile(1) != 100 {
		t.Errorf("Quantile(1) after Add = %v", c.Quantile(1))
	}
}

func TestCDFPointsCoverRange(t *testing.T) {
	c := FromSamples([]float64{0, 50, 100})
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("len(Points) = %d", len(pts))
	}
	if pts[0].Y != 0 || pts[10].Y != 1 {
		t.Errorf("endpoint fractions = %v, %v", pts[0].Y, pts[10].Y)
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].X < pts[j].X }) {
		// Equal X values are allowed; verify non-decreasing.
		for i := 1; i < len(pts); i++ {
			if pts[i].X < pts[i-1].X {
				t.Fatal("Points X not non-decreasing")
			}
		}
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-1)  // clamps to bin 0
	h.Add(100) // clamps to last bin
	h.Add(5)   // bin 2
	if h.Counts[0] != 1 || h.Counts[4] != 1 || h.Counts[2] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 3 {
		t.Errorf("Total = %d", h.Total())
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	if got := h.Fraction(2); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("Fraction(2) = %v", got)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(5, 1, 3) did not panic")
		}
	}()
	NewHistogram(5, 1, 3)
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-9 {
		t.Errorf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, neg); math.Abs(got+1) > 1e-9 {
		t.Errorf("Pearson = %v, want -1", got)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("Pearson constant x = %v, want 0", got)
	}
	if got := Pearson([]float64{1, 2}, []float64{1}); got != 0 {
		t.Errorf("Pearson length mismatch = %v, want 0", got)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone transform should give rho = 1.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125}
	if got := Spearman(x, y); math.Abs(got-1) > 1e-9 {
		t.Errorf("Spearman = %v, want 1", got)
	}
}

func TestSpearmanTies(t *testing.T) {
	x := []float64{1, 2, 2, 3}
	y := []float64{1, 2, 2, 3}
	if got := Spearman(x, y); math.Abs(got-1) > 1e-9 {
		t.Errorf("Spearman with ties = %v, want 1", got)
	}
}

func TestScatterBinnedMeans(t *testing.T) {
	var s Scatter
	for i := 0; i < 100; i++ {
		s.Add(float64(i), float64(i)*2)
	}
	pts := s.BinnedMeans(10)
	if len(pts) != 10 {
		t.Fatalf("bins = %d, want 10", len(pts))
	}
	for _, p := range pts {
		if math.Abs(p.Y-2*p.X) > 1e-9 {
			t.Errorf("bin mean (%v, %v) off the line y=2x", p.X, p.Y)
		}
	}
	if s.N() != 100 {
		t.Errorf("N = %d", s.N())
	}
}

func TestScatterConstantX(t *testing.T) {
	var s Scatter
	s.Add(5, 1)
	s.Add(5, 2)
	pts := s.BinnedMeans(4)
	if len(pts) != 1 {
		t.Fatalf("constant-x scatter bins = %d, want 1", len(pts))
	}
	if pts[0].X != 5 || pts[0].Y != 1.5 {
		t.Errorf("bin = %+v", pts[0])
	}
}

func TestFormatBytes(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{1.95e15, "1.95e+03 TB"},
		{5e12, "5 TB"},
		{2.5e9, "2.5 GB"},
		{367e6, "367 MB"},
		{1200, "1.2 KB"},
		{12, "12 B"},
	} {
		if got := FormatBytes(tc.in); got != tc.want {
			t.Errorf("FormatBytes(%g) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestFormatPercent(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, "0%"},
		{0.3, "30%"},
		{0.042, "4.2%"},
		{0.0074, "0.74%"},
	} {
		if got := FormatPercent(tc.in); got != tc.want {
			t.Errorf("FormatPercent(%g) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestPercentChange(t *testing.T) {
	if got := PercentChange(100, 162); math.Abs(got-0.62) > 1e-9 {
		t.Errorf("PercentChange = %v, want 0.62", got)
	}
	if got := PercentChange(0, 5); got != 0 {
		t.Errorf("PercentChange from zero = %v, want 0", got)
	}
	if got := PercentChange(100, 38); math.Abs(got+0.62) > 1e-9 {
		t.Errorf("negative PercentChange = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Table X: demo", "OS", "Clients")
	tab.AddRow("Windows", "822,761")
	tab.AddRow("iOS")
	tab.AddNote("note line")
	out := tab.String()
	for _, want := range []string{"Table X: demo", "OS", "Windows", "822,761", "note line"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
}

func TestTableDropsExtraCells(t *testing.T) {
	tab := NewTable("", "a")
	tab.AddRow("x", "overflow")
	if strings.Contains(tab.String(), "overflow") {
		t.Error("extra cell rendered")
	}
}

func TestRenderCDFs(t *testing.T) {
	c := FromSamples([]float64{0, 0.25, 0.5, 0.75, 1})
	out := RenderCDFs("Figure: demo", 40, 10, map[string]*CDF{"2.4 GHz": c})
	if !strings.Contains(out, "Figure: demo") || !strings.Contains(out, "2.4 GHz (n=5)") {
		t.Errorf("render missing expected labels:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Error("render has no curve markers")
	}
}

func TestRenderCDFsEmptySeries(t *testing.T) {
	out := RenderCDFs("t", 30, 6, map[string]*CDF{"empty": {}})
	if out == "" {
		t.Error("empty render produced no output")
	}
}

func TestRenderHistogram(t *testing.T) {
	h := NewHistogram(0, 3, 3)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	out := RenderHistogram("hist", h, []string{"ch1", "ch6", "ch11"}, 20)
	if !strings.Contains(out, "ch6") || !strings.Contains(out, "#") {
		t.Errorf("histogram render unexpected:\n%s", out)
	}
}

func TestRenderSeries(t *testing.T) {
	vals := make([]float64, 48)
	for i := range vals {
		vals[i] = 0.5 + 0.4*math.Sin(float64(i)/8)
	}
	out := RenderSeries("link", 60, 8, 0, 1, map[string][]float64{"link A": vals})
	if !strings.Contains(out, "link A") {
		t.Errorf("series render missing label:\n%s", out)
	}
}

func TestRanksAveraging(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func BenchmarkCDFQuantile(b *testing.B) {
	c := &CDF{}
	for i := 0; i < 100000; i++ {
		c.Add(float64(i % 997))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Quantile(0.9)
	}
}

func BenchmarkPearson(b *testing.B) {
	x := make([]float64, 10000)
	y := make([]float64, 10000)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(i % 37)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pearson(x, y)
	}
}
