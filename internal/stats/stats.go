package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds online first and second moments plus extrema.
// The zero value is an empty summary ready to use.
type Summary struct {
	n          int
	mean, m2   float64
	min, max   float64
	sum        float64
	hasExtrema bool
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	s.sum += x
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.hasExtrema || x < s.min {
		s.min = x
	}
	if !s.hasExtrema || x > s.max {
		s.max = x
	}
	s.hasExtrema = true
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the population variance, or 0 with fewer than two
// observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Stddev returns the population standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 { return s.max }

// CDF is an empirical cumulative distribution built from raw samples.
// Build one with Add calls (or FromSamples) and then query quantiles.
type CDF struct {
	samples []float64
	sorted  bool
}

// FromSamples constructs a CDF taking ownership of the slice.
func FromSamples(v []float64) *CDF {
	c := &CDF{samples: v}
	return c
}

// Add appends one sample.
func (c *CDF) Add(x float64) {
	c.samples = append(c.samples, x)
	c.sorted = false
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.samples) }

func (c *CDF) ensureSorted() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// Quantile returns the q-th quantile (q in [0,1]) using linear
// interpolation between order statistics. It returns 0 for an empty CDF.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	if q <= 0 {
		return c.samples[0]
	}
	if q >= 1 {
		return c.samples[len(c.samples)-1]
	}
	pos := q * float64(len(c.samples)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(c.samples) {
		return c.samples[len(c.samples)-1]
	}
	return c.samples[i]*(1-frac) + c.samples[i+1]*frac
}

// Median returns the 50th percentile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Mean returns the arithmetic mean of the samples.
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range c.samples {
		sum += v
	}
	return sum / float64(len(c.samples))
}

// FractionBelow returns the empirical P(X <= x).
func (c *CDF) FractionBelow(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	i := sort.SearchFloat64s(c.samples, x)
	// Advance over ties so the result is P(X <= x), not P(X < x).
	for i < len(c.samples) && c.samples[i] == x {
		i++
	}
	return float64(i) / float64(len(c.samples))
}

// FractionAtLeast returns the empirical P(X >= x).
func (c *CDF) FractionAtLeast(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	i := sort.SearchFloat64s(c.samples, x)
	return float64(len(c.samples)-i) / float64(len(c.samples))
}

// Points returns n evenly spaced (value, cumulative-fraction) pairs
// suitable for plotting the CDF curve.
func (c *CDF) Points(n int) []Point {
	if len(c.samples) == 0 || n <= 0 {
		return nil
	}
	c.ensureSorted()
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		if n == 1 {
			q = 0.5
		}
		pts = append(pts, Point{X: c.Quantile(q), Y: q})
	}
	return pts
}

// Point is a 2-D sample.
type Point struct{ X, Y float64 }

// Histogram counts observations into fixed-width bins over [Lo, Hi).
// Values outside the range are clamped into the first or last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with nbins bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Fraction returns the share of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Pearson returns the Pearson correlation coefficient of the paired
// samples. It returns 0 if either vector is constant or the lengths
// differ.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Spearman returns the Spearman rank correlation coefficient, which is
// Pearson correlation applied to ranks (average ranks for ties).
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	return Pearson(ranks(x), ranks(y))
}

func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	r := make([]float64, len(v))
	i := 0
	for i < len(idx) {
		j := i
		for j+1 < len(idx) && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// Scatter accumulates paired observations for correlation studies such as
// the paper's utilization-versus-neighbor-count plots (Figures 7 and 8).
type Scatter struct {
	X, Y []float64
}

// Add appends one point.
func (s *Scatter) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// N returns the number of points.
func (s *Scatter) N() int { return len(s.X) }

// Pearson returns the Pearson correlation of the accumulated points.
func (s *Scatter) Pearson() float64 { return Pearson(s.X, s.Y) }

// Spearman returns the Spearman correlation of the accumulated points.
func (s *Scatter) Spearman() float64 { return Spearman(s.X, s.Y) }

// BinnedMeans partitions the points into nbins equal-width bins by X and
// returns, for each non-empty bin, the bin's mean X and mean Y. This is
// the numeric summary of what the paper's scatter plots show visually.
func (s *Scatter) BinnedMeans(nbins int) []Point {
	if len(s.X) == 0 || nbins <= 0 {
		return nil
	}
	lo, hi := s.X[0], s.X[0]
	for _, x := range s.X {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if hi == lo {
		hi = lo + 1
	}
	sumX := make([]float64, nbins)
	sumY := make([]float64, nbins)
	cnt := make([]int, nbins)
	for i := range s.X {
		b := int((s.X[i] - lo) / (hi - lo) * float64(nbins))
		if b >= nbins {
			b = nbins - 1
		}
		sumX[b] += s.X[i]
		sumY[b] += s.Y[i]
		cnt[b]++
	}
	var pts []Point
	for b := 0; b < nbins; b++ {
		if cnt[b] > 0 {
			pts = append(pts, Point{X: sumX[b] / float64(cnt[b]), Y: sumY[b] / float64(cnt[b])})
		}
	}
	return pts
}

// FormatBytes renders a byte count the way the paper's tables do:
// terabytes with two significant figures for large values, MB otherwise.
func FormatBytes(b float64) string {
	switch {
	case b >= 1e12:
		return fmt.Sprintf("%.3g TB", b/1e12)
	case b >= 1e9:
		return fmt.Sprintf("%.3g GB", b/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.3g MB", b/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.3g KB", b/1e3)
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}

// FormatPercent renders a fraction as a percentage with the paper's
// precision conventions (two significant figures below 10%).
func FormatPercent(frac float64) string {
	p := frac * 100
	switch {
	case p == 0:
		return "0%"
	case math.Abs(p) < 10:
		return fmt.Sprintf("%.2g%%", p)
	default:
		return fmt.Sprintf("%.0f%%", p)
	}
}

// PercentChange returns the year-over-year "% increase" the paper reports
// in its tables: (now-before)/before as a fraction. Returns 0 when the
// baseline is zero.
func PercentChange(before, now float64) float64 {
	if before == 0 {
		return 0
	}
	return (now - before) / before
}
