// Appusage: drive the on-AP application-identification pipeline by hand.
// It builds raw flow artifacts (DNS queries, TLS ClientHellos, HTTP
// request heads), pushes them through a Click pipeline with a flow
// table, and prints what the classifier recovered — including the OS
// inference from DHCP fingerprints and User-Agents (paper §2.1, §3.2).
//
//	go run ./examples/appusage
package main

import (
	"fmt"

	"wlanscale/internal/apps"
	"wlanscale/internal/click"
	"wlanscale/internal/dot11"
	"wlanscale/internal/flow"
)

func main() {
	classifier := apps.NewClassifier()
	fmt.Printf("Compiled %d application-identification rules.\n\n", classifier.RuleCount())

	table := flow.NewTable(classifier)
	pipe := flow.NewPipeline(table)

	laptop := dot11.MAC{0x28, 0xcf, 0xe9, 0x10, 0x20, 0x30} // Apple OUI

	// The client associates; its DHCP request carries the macOS
	// fingerprint.
	fp, _ := apps.DHCPFingerprintFor(apps.OSMacOSX)
	table.ObserveDHCP(laptop, fp)

	// Flow 1: Netflix over TLS. The slow path sees the DNS lookup and
	// the ClientHello SNI.
	push(pipe, laptop, 1, apps.FlowMeta{
		Proto:       apps.TCP,
		ServerPort:  443,
		DNSQuery:    apps.BuildDNSQuery(1, "occ-0-987-1.1.nflxvideo.net"),
		ClientHello: apps.BuildClientHello("occ-0-987-1.1.nflxvideo.net"),
	}, 90_000, 2_400_000_000)

	// Flow 2: plain-HTTP news site; the User-Agent feeds OS inference.
	push(pipe, laptop, 2, apps.FlowMeta{
		Proto:      apps.TCP,
		ServerPort: 80,
		HTTPHead:   apps.BuildHTTPRequest("GET", "edition.cnn.com", "/", apps.UserAgentFor(apps.OSMacOSX), ""),
	}, 40_000, 3_000_000)

	// Flow 3: SMB to the office file server — identified by port alone.
	push(pipe, laptop, 3, apps.FlowMeta{Proto: apps.TCP, ServerPort: 445}, 600_000_000, 900_000_000)

	// Flow 4: an unknown HTTPS service lands in the misc bucket.
	push(pipe, laptop, 4, apps.FlowMeta{
		Proto:       apps.TCP,
		ServerPort:  443,
		ClientHello: apps.BuildClientHello("internal.example-corp.invalid"),
	}, 1_000_000, 9_000_000)

	fmt.Printf("pipeline: %d packets in, %d diverted to the slow path\n\n",
		pipe.In.Packets(), pipe.SlowPath.Packets())

	for _, cu := range table.Snapshot() {
		fmt.Printf("client %s  (inferred OS: %s)\n", cu.Client, table.InferOS(cu.Client))
		for name, u := range cu.Apps {
			fmt.Printf("  %-28s %10.1f MB down  %8.1f MB up  (%d flows)\n",
				name, float64(u.DownBytes)/1e6, float64(u.UpBytes)/1e6, u.Flows)
		}
	}
}

func push(p *flow.Pipeline, client dot11.MAC, id uint64, meta apps.FlowMeta, up, down int) {
	p.Push(&click.Packet{Client: client, FlowID: id, Length: 200, Meta: &meta})
	p.Push(&click.Packet{Client: client, FlowID: id, Length: down})
	p.Push(&click.Packet{Client: client, FlowID: id, Length: up, Upstream: true})
}
