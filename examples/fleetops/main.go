// Fleetops: the operational side of the paper (Section 6) end to end —
// the skyscraper out-of-memory bug, its detection from crash telemetry
// and neighbor-count outliers, the bounded-table fix, software-update
// usage spikes, and per-client traffic shaping.
//
//	go run ./examples/fleetops
package main

import (
	"fmt"

	"wlanscale/internal/anomaly"
	"wlanscale/internal/apps"
	"wlanscale/internal/backend"
	"wlanscale/internal/dot11"
	"wlanscale/internal/rng"
	"wlanscale/internal/shaper"
	"wlanscale/internal/telemetry"
)

func main() {
	root := rng.New(2026)
	store := backend.NewStore()

	// --- Section 6.1: "some of the access points were located in
	// skyscrapers in Manhattan and could decode beacons from miles
	// away". Replay the bug: a 256 KB neighbor table fills and the AP
	// OOMs, reboots, fills again...
	fmt.Println("== The skyscraper bug ==")
	table := anomaly.NewNeighborTable(256)
	seq := uint64(0)
	for reboot := 0; reboot < 4; reboot++ {
		var crashed *anomaly.ErrOOM
		for i := uint64(0); ; i++ {
			if err := table.Observe(i); err != nil {
				crashed = err.(*anomaly.ErrOOM)
				break
			}
		}
		fmt.Printf("  boot %d: OOM after tracking %d networks (%d KB used)\n",
			reboot+1, crashed.Entries, crashed.UsedKB)
		// The device reboots and uploads a post-mortem.
		seq++
		report := &telemetry.Report{
			Serial: "Q2XX-MANHATTAN", SeqNo: seq,
			Crashes: []telemetry.CrashRecord{{
				Timestamp:     seq * 3600,
				Kind:          uint8(anomaly.CrashOOM),
				Firmware:      "r24.7",
				PC:            0x80401a2c,
				NeighborCount: uint32(crashed.Entries),
			}},
		}
		decoded, err := telemetry.UnmarshalReport(report.Marshal())
		if err != nil {
			panic(err)
		}
		store.Ingest(decoded)
		table = anomaly.NewNeighborTable(256)
	}

	// Healthy fleet telemetry for contrast.
	for i := 0; i < 200; i++ {
		serial := fmt.Sprintf("Q2XX-%04d", i)
		var recs []telemetry.NeighborRecord
		for j := 0; j < 40+root.IntN(30); j++ {
			recs = append(recs, telemetry.NeighborRecord{
				BSSID: dot11.MACFromUint64([3]byte{0, 0x1c, 0xbf}, uint64(i*1000+j)),
				Band:  dot11.Band24, Channel: 1,
			})
		}
		store.Ingest(&telemetry.Report{Serial: serial, SeqNo: 1, Neighbors: recs})
	}
	var sky []telemetry.NeighborRecord
	for j := 0; j < 2800; j++ {
		sky = append(sky, telemetry.NeighborRecord{
			BSSID: dot11.MACFromUint64([3]byte{9, 9, 9}, uint64(j)),
			Band:  dot11.Band24, Channel: 1,
		})
	}
	store.Ingest(&telemetry.Report{Serial: "Q2XX-MANHATTAN", SeqNo: seq + 1, Neighbors: sky})

	det := anomaly.NewDetector()
	det.FeedCrashes(store)
	det.FeedNeighborCounts(store)
	fmt.Printf("\n  reboot loops (>=3 crashes): %v\n", det.RebootLoops(3))
	for _, o := range det.NeighborOutliers(8) {
		fmt.Printf("  neighbor outlier: %s at %d networks (%.0f sigma above fleet median)\n",
			o.Serial, o.Count, o.Sigma)
	}
	fmt.Printf("  crashes by firmware: %v\n", det.CrashesByFirmware())

	// The fix: bound the table.
	fixed := anomaly.NewNeighborTable(256)
	dropped := 0
	for i := uint64(0); i < 5000; i++ {
		if fixed.ObserveBounded(i, 400) {
			dropped++
		}
	}
	fmt.Printf("  with the bounded-table fix: %d tracked, %d dropped, %d KB used — no reboot\n\n",
		fixed.Len(), dropped, fixed.UsedKB())

	// --- Section 6.2: software updates "sometimes causing sudden
	// increases totaling tens or hundreds of gigabytes".
	fmt.Println("== Patch-day spike detection ==")
	spikes := anomaly.NewSpikeDetector(6, 3)
	day := 0
	feed := func(gb float64) {
		day++
		if spikes.Add("Software updates", gb*1e9) {
			fmt.Printf("  day %2d: %5.0f GB  <-- SPIKE (OS update surge)\n", day, gb)
		} else {
			fmt.Printf("  day %2d: %5.0f GB\n", day, gb)
		}
	}
	for i := 0; i < 7; i++ {
		feed(90 + root.Float64()*20)
	}
	feed(740) // patch Tuesday
	feed(105)

	// --- Practical implication 1: shape the heavy hitters.
	fmt.Println("\n== Per-client shaping ==")
	sh, err := shaper.New([]shaper.Rule{
		{Global: true, RateBps: 2e6, BurstBytes: 4e6},
		{Category: apps.CatVideoMusic, RateBps: 500e3, BurstBytes: 1e6},
	})
	if err != nil {
		panic(err)
	}
	byClient := make(map[dot11.MAC]float64)
	for tick := 0; tick < 60; tick++ {
		for c := 0; c < 8; c++ {
			mac := dot11.MAC{4, 0, 0, 0, 0, byte(c)}
			var demand float64 = 100e3
			cat := apps.CatOther
			if c == 0 { // the Netflix binger
				demand = 4e6
				cat = apps.CatVideoMusic
			}
			byClient[mac] += sh.Shape(float64(tick), mac, cat, demand)
		}
	}
	passed, droppedBytes := sh.Stats()
	fmt.Printf("  admitted %.0f MB, shaped away %.0f MB\n", passed/1e6, droppedBytes/1e6)
	fmt.Printf("  fairness index across the cell: %.3f\n", shaper.FairnessIndex(byClient))
	top := shaper.TopTalkers(byClient, 2)
	fmt.Printf("  top talkers after shaping: %s (%.0f MB), %s (%.0f MB)\n",
		top[0], byClient[top[0]]/1e6, top[1], byClient[top[1]]/1e6)
}
