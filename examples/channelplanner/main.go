// Channelplanner: demonstrates the paper's practical conclusion that
// "channel planning using a utilization measure" beats counting nearby
// access points, using the chanplan module. It builds one congested RF
// neighborhood, surveys it the way an MR18's scanning radio would, and
// compares the two selection policies.
//
//	go run ./examples/channelplanner
package main

import (
	"fmt"

	"wlanscale/internal/airtime"
	"wlanscale/internal/chanplan"
	"wlanscale/internal/dot11"
	"wlanscale/internal/rng"
	"wlanscale/internal/telemetry"
)

func main() {
	root := rng.New(7)
	hood := airtime.NewNeighborhood()
	var neighbors []telemetry.NeighborRecord

	// A typical downtown 2.4 GHz neighborhood: many APs on channel 11
	// but mostly idle; few APs on channel 1, two of them streaming
	// hard; channel 6 moderate.
	populate := func(chNum, idleAPs, heavyAPs int) {
		ch, _ := dot11.ChannelByNumber(dot11.Band24, chNum)
		for i := 0; i < idleAPs; i++ {
			hood.Add(airtime.NewBeaconSource(ch, -58, 2, 0.1))
			hood.Add(airtime.NewDataSource(ch, 20, -58, root.SplitN(fmt.Sprintf("d%d", chNum), i)))
			neighbors = append(neighbors, telemetry.NeighborRecord{Band: dot11.Band24, Channel: chNum})
		}
		for i := 0; i < heavyAPs; i++ {
			hood.Add(airtime.NewBeaconSource(ch, -55, 1, 0))
			hood.Add(airtime.NewClientTrafficSource(ch, -55, 0.35, 0.2, root.SplitN(fmt.Sprintf("h%d", chNum), i)))
			neighbors = append(neighbors, telemetry.NeighborRecord{Band: dot11.Band24, Channel: chNum})
		}
	}
	populate(1, 3, 2)
	populate(6, 12, 0)
	populate(11, 22, 0)

	surveys := chanplan.BuildSurveys(dot11.Band24, neighbors, hood, 13, 20)
	fmt.Println("Channel survey (mean of 20 scan windows):")
	fmt.Println("  channel   detected-networks   measured-utilization")
	for _, s := range surveys {
		fmt.Printf("  %4d      %8d            %8.1f%%\n", s.Channel.Number, s.Networks, s.Busy*100)
	}

	for _, policy := range []chanplan.Policy{chanplan.ByCount, chanplan.ByUtilization} {
		pick, _ := chanplan.Pick(surveys, policy)
		fmt.Printf("\n%-15s picks channel %d (%d networks, %.1f%% busy)\n",
			policy, pick.Channel.Number, pick.Networks, pick.Busy*100)
	}

	// Fleet view: plan a three-AP office against the same environment.
	perAP := map[string][]chanplan.Survey{
		"Q2XX-LOBBY": surveys, "Q2XX-FLOOR2": surveys, "Q2XX-FLOOR3": surveys,
	}
	hoods := map[string]*airtime.Neighborhood{
		"Q2XX-LOBBY": hood, "Q2XX-FLOOR2": hood, "Q2XX-FLOOR3": hood,
	}
	fmt.Println("\nNetwork-wide plan (utilization policy, peers spread):")
	plan := chanplan.PlanNetwork(perAP, chanplan.ByUtilization)
	for _, a := range plan {
		fmt.Printf("  %s\n", a)
	}
	fmt.Printf("realized mean utilization across the plan: %.1f%%\n",
		chanplan.Evaluate(plan, hoods, 13, 20)*100)
	fmt.Println("\nThe presence of a network on a channel does not predict its load (paper §5.1).")
}
