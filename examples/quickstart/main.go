// Quickstart: simulate a small fleet, run the measurement pipeline, and
// print the headline numbers of the study — in under a minute.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wlanscale/internal/core"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.UsageNetworks = 40
	cfg.ClientCap = 150
	cfg.LinkNetworks = 40
	cfg.UtilAPs = 60
	cfg.ScanAPs = 50

	study, err := core.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Simulating two one-week measurement epochs...")
	now, err := study.RunUsageEpoch(study.Fleet15)
	if err != nil {
		log.Fatal(err)
	}
	before, err := study.RunUsageEpoch(study.Fleet14)
	if err != nil {
		log.Fatal(err)
	}

	t3 := core.Table3UsageByOS(now, before)
	fmt.Printf("\nFleet totals (scaled to the paper's 20,667 networks):\n")
	fmt.Printf("  clients:    %.2fM (%+.0f%% YoY)\n", t3.All.Clients/1e6, t3.All.ClientsIncrease*100)
	fmt.Printf("  usage:      %.0f TB/week (%+.0f%% YoY)\n", t3.All.TB, t3.All.TBIncrease*100)
	fmt.Printf("  per client: %.0f MB/week (%+.0f%% YoY)\n", t3.All.MBPerClient, t3.All.MBIncrease*100)

	f1 := core.Figure1RSSI(now)
	fmt.Printf("\nBand usage: %.0f%% of clients on 2.4 GHz even though %.0f%% are 5 GHz-capable\n",
		f1.Fraction24()*100, f1.CapableFiveGHz*100)
	fmt.Printf("Median client SNR: %.0f dB\n", f1.RSSI24.Median())

	fig3 := study.RunFigure3()
	fmt.Printf("\nLink delivery (2.4 GHz): %.0f%% of links intermediate (5-95%%), median ratio %.2f\n",
		core.IntermediateFraction(fig3.Now24, 0.05, 0.95)*100, fig3.Now24.Median())

	fig6, err := study.RunFigure6()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Channel utilization (2.4 GHz): median %.0f%%, 90th percentile %.0f%%\n",
		fig6.Util24.Median()*100, fig6.Util24.Quantile(0.9)*100)

	fmt.Println("\nRun `go run ./cmd/merakireport` for every table and figure.")
}
