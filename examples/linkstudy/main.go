// Linkstudy: use the mesh-probe subsystem directly to study how one
// wireless link's delivery ratio depends on distance, band, and channel
// load — the microscope view behind the paper's Figures 3-5.
//
//	go run ./examples/linkstudy
package main

import (
	"fmt"

	"wlanscale/internal/dot11"
	"wlanscale/internal/meshprobe"
	"wlanscale/internal/rf"
	"wlanscale/internal/rng"
	"wlanscale/internal/stats"
)

func main() {
	root := rng.New(42)

	fmt.Println("Delivery ratio vs distance (drywall office, quiet channel, 2.4 GHz):")
	fmt.Println("  distance   median-SNR   delivery")
	for _, d := range []float64{10, 30, 60, 100, 150, 220, 300} {
		// Average several link realizations: every link has its own
		// static shadowing and multipath personality.
		var sum, snr float64
		const reps = 25
		for i := 0; i < reps; i++ {
			l := meshprobe.New(rf.EnvDrywallOffice, dot11.Band24, d, 26, 0,
				root.Split(fmt.Sprintf("d%v", d)).SplitN("rep", i))
			sum += l.MeanDelivery(20, meshprobe.PerProbe)
			snr += l.MedianSNRdB()
		}
		fmt.Printf("  %5.0f m    %6.1f dB    %5.1f%%\n", d, snr/reps, sum/reps*100)
	}

	fmt.Println("\nDelivery ratio vs channel load (fixed 60 m link, 2.4 GHz):")
	fmt.Println("  busy    delivery")
	for _, busy := range []float64{0, 0.1, 0.25, 0.5, 0.75} {
		var sum float64
		const reps = 40
		for i := 0; i < reps; i++ {
			l := meshprobe.New(rf.EnvDrywallOffice, dot11.Band24, 60, 26, busy,
				root.Split(fmt.Sprintf("b%v", busy)).SplitN("rep", i))
			sum += l.MeanDelivery(20, meshprobe.PerProbe)
		}
		fmt.Printf("  %4.0f%%   %5.1f%%\n", busy*100, sum/reps*100)
	}

	fmt.Println("\nOne intermediate link over a week (300 s windows):")
	var link *meshprobe.Link
	for i := 0; ; i++ {
		l := meshprobe.New(rf.EnvDrywallOffice, dot11.Band24, 90, 26, 0.25, root.SplitN("candidate", i))
		if r := l.MeanDelivery(5, meshprobe.PerProbe); r > 0.2 && r < 0.9 {
			link = l
			break
		}
	}
	series := link.WeekSeries(meshprobe.PerProbe)
	fmt.Print(stats.RenderSeries("", 72, 10, 0, 1, map[string][]float64{"delivery": series}))

	cdf := stats.FromSamples(series)
	fmt.Printf("window delivery: min %.2f, median %.2f, max %.2f\n",
		cdf.Quantile(0), cdf.Median(), cdf.Quantile(1))
}
